//! Session-based serving: one [`Engine`] per network, one
//! [`StreamSession`] per video stream, cross-stream batched key frames.
//!
//! The paper's EVA² unit sits in front of *shared* layer accelerators and
//! serves a stream of frames; a deployment serves many such streams from
//! one process. The single-stream [`AmcExecutor`](crate::executor::AmcExecutor)
//! cannot model that: it borrows its network and fuses per-stream state
//! (key frame, policy, stats) with per-process resources (the network,
//! GEMM scratch). This module splits them:
//!
//! * [`Engine`] owns the process-wide resources — an [`Arc<Network>`] plus
//!   the shared im2col/packing scratch pools — and executes frames.
//! * [`StreamSession`] holds exactly the per-stream state: the stored key
//!   frame and its sparse activation, the key-frame policy, the RFBME
//!   scratch, and per-stream statistics. Sessions are cheap, independent,
//!   and `Send`.
//!
//! # The batching seam
//!
//! Key frames are where the money is: a key frame runs the full CNN
//! prefix, a predicted frame only warps and runs the suffix. Key frames
//! from *independent* streams arrive decorrelated — one stream's scene cut
//! does not align with another's — so a serving process regularly holds
//! several key frames at once. [`Engine::process_batch`] classifies every
//! submitted frame with its own session's RFBME + policy (bit-identical to
//! serial processing), then executes all key-frame prefixes through
//! `Network::forward_prefix_batched`: weight panels pack once per layer
//! per batch, the unpacked-B micro-kernel skips the per-frame repack, and
//! outputs store in a single bias+product pass. Batching across streams is
//! strictly better than within one stream — it adds no latency, because no
//! stream waits on its own future frames. Key frames of different
//! resolutions batch in per-shape groups (sessions need not share an input
//! resolution, only a target layer).
//!
//! # The predicted-frame fast path
//!
//! Predicted frames are the steady-state common case — key frames are
//! deliberately rare — so their path is kept free of dense intermediates:
//! RFBME runs the two-level best-first search
//! (`eva2_motion::rfbme`, with per-stream pruning counters surfaced in
//! [`ExecStats`]), and warping emits the sparse activation *directly*
//! ([`crate::warp::warp_activation_sparse`] /
//! [`crate::warp::warp_activation_fixed_sparse`]) into the skip-zero CNN
//! suffix. A predicted frame therefore flows RFBME → warp → sparse suffix
//! without ever materialising or re-compressing a dense activation tensor,
//! mirroring the hardware's sparse activation memory. The fused seam is
//! bit-identical to dense-warp-then-extract, so the wrapper guarantee
//! below is unaffected.
//!
//! # Threading model & determinism
//!
//! [`EngineLimits::worker_threads`] sizes a pool of workers (scoped
//! threads with one private [`GemmScratch`] each — the hot path never
//! locks a shared pool) that [`Engine::process_batch`] fans work out to
//! in three places:
//!
//! 1. **Per-stream RFBME** runs stream-per-worker: motion estimation
//!    touches only its own session's key image and `RfbmeScratch`, so
//!    jobs partition round-robin across workers with no sharing.
//! 2. **Coinciding key frames** fan out frame-per-thread: each worker
//!    runs *its* subset of the tick's key frames through one
//!    `forward_prefix_batched` sub-batch (one frame per thread beats
//!    splitting a single 48×48 frame's GEMM across cores — the PR-4
//!    finding; within a worker the sub-batch still amortises A-packing).
//! 3. **Completion** (sparse store refresh + suffix for keys, warp +
//!    suffix for predicted) is per-session work and again runs
//!    stream-per-worker.
//!
//! Between the parallel phases, admission — budget shedding, the
//! key-frame decision, and counter commits — stays a short *serial* walk
//! in submission order, which is what keeps budget semantics identical to
//! the single-threaded engine.
//!
//! **Outputs are bit-identical for every worker count.** Three facts make
//! this free: sessions are independent (no phase shares mutable state
//! across streams); the batched prefix is bit-identical to the per-frame
//! prefix *for any partition of the batch* (the `forward_prefix_batched`
//! contract); and every result lands in its job's own slot, so scheduling
//! order cannot reorder anything. The extended `serve_interleaved.rs`
//! harness pins N-worker vs 1-worker vs serial-executor equality under
//! random interleavings, evictions, and fault storms.
//!
//! The one observable difference: with `worker_threads > 1` the engine
//! estimates motion *speculatively* for every screened-in job before the
//! serial admission walk, so a frame that ends up shed by a tick budget
//! may have warmed its session's `RfbmeScratch`. Scratch contents never
//! influence results (the eviction/rehydration tests rely on exactly that
//! property), so shed-and-resubmit stays bit-identical.
//!
//! `worker_threads: 1` (the default) runs every phase inline — no threads
//! are spawned, and the engine behaves exactly like the pre-pool
//! implementation. On the single-CPU dev container the forced thread
//! count is still honoured (cf. `gemm_nn_threads`), which is how the
//! bit-identity tests exercise the real split without multi-core
//! hardware; wall-clock scaling needs a multi-core host.
//!
//! # Lifecycle & failure modes
//!
//! A long-running serving process cannot afford a panic, an unbounded
//! buffer, or a silently wrong frame, so the engine wraps the AMC state
//! machine in an explicit lifecycle. Every submission returns a
//! [`FrameOutcome`]: the engine either serves a correct frame — typed by
//! how it was produced ([`FrameOutcome::Key`], [`FrameOutcome::Predicted`],
//! [`FrameOutcome::ForcedKey`] with the residual that tripped the
//! confidence bound), carrying the output tensor and the per-frame
//! [`ExecStats`] delta — or tells the caller exactly why it refused:
//! [`FrameOutcome::Shed`] (backpressure; resubmit next tick) versus
//! [`FrameOutcome::Rejected`] (the submission itself is wrong).
//!
//! * **Admission control.** [`EngineLimits::max_sessions`] caps concurrent
//!   sessions: [`Engine::open_session`] returns
//!   [`AmcError::EngineAtCapacity`] when the cap is reached. Dropping a
//!   [`StreamSession`] (or retiring one with [`Engine::evict_session`])
//!   frees its slot immediately.
//! * **Backpressure.** Each [`Engine::process_batch`] call is one *tick*.
//!   [`EngineLimits::max_frames_per_tick`] and
//!   [`EngineLimits::max_key_frames_per_tick`] bound the work one tick may
//!   admit; excess frames are *shed* with [`AmcError::BudgetExceeded`].
//!   Shedding happens strictly before any state mutation — a shed frame
//!   leaves its session's counters, key state, and policy untouched, so
//!   resubmitting it next tick is bit-identical to having submitted it
//!   then. (Key-frame policies keep their state in
//!   [`KeyFramePolicy::note_key_frame`], never in `decide`, which makes
//!   the classify step side-effect-free.)
//! * **Eviction & rehydration.** [`StreamSession::memory_footprint`]
//!   audits a session's heap use (key image + compressed/sparse/decoded
//!   activations + RFBME scratch, by allocated capacity).
//!   [`Engine::maintain`] drops the key state of sessions idle for
//!   [`EngineLimits::idle_evict_ticks`] ticks and then least-recently-used
//!   sessions until the total fits [`EngineLimits::max_total_bytes`];
//!   a session whose own footprint exceeds
//!   [`EngineLimits::max_session_bytes`] after a key frame is trimmed
//!   immediately. Eviction is transparent: the session's next frame
//!   *rehydrates* through the forced-key seam (no stored state ⇒ key
//!   frame), bit-identical to a fresh session from that key frame onward.
//!   [`Engine::evict_session`] is the hard variant — it revokes admission,
//!   and further submissions return [`AmcError::SessionEvicted`].
//! * **Graceful degradation.** When RFBME cannot explain a frame — the
//!   residual per-pixel block error exceeds
//!   [`AmcConfig::max_residual_error`](crate::executor::AmcConfig::max_residual_error)
//!   — the engine refuses to warp garbage and forces a key frame instead
//!   (§III-C of the paper), counted in [`ExecStats::forced_keys`].
//! * **Typed internal errors.** Invariant violations that previously
//!   panicked (missing key state or motion on a predicted frame, a
//!   short batched-prefix result) now surface as [`AmcError::Internal`];
//!   submitting a frame whose geometry differs from the stored key state
//!   returns [`AmcError::FrameGeometryMismatch`]; submitting a session to
//!   an engine that did not open it returns [`AmcError::EngineMismatch`].
//!
//! `crates/core/tests/lifecycle_faults.rs` drives all of this under a
//! deterministic fault-injection harness (dropped frames, corruption,
//! saturation, scene cuts, mid-stream resolution changes) and asserts the
//! engine never panics: every submission yields a correct frame or a typed
//! error.
//!
//! # Failure containment
//!
//! The lifecycle above survives bad *inputs*; this layer survives bugs and
//! slowness inside the engine's own process. Three mechanisms, all
//! per-session rather than per-process:
//!
//! * **Panic isolation.** Every per-frame job — the speculative RFBME
//!   estimate, the admission walk's classify and commit steps, each
//!   key-frame prefix bucket, and per-frame completion — runs inside the
//!   engine's one `catch_unwind` seam (the `contain` module; the
//!   `eva2-lint` rule `contained-unwind` keeps `catch_unwind` out of every
//!   other module). A panic escaping a job costs exactly that frame: it
//!   comes back as [`FrameOutcome::Rejected`] carrying
//!   [`AmcError::WorkerPanicked`] (naming the phase — `"estimate"`,
//!   `"admit"`, `"prefix"`, or `"complete"` — and the payload), and every
//!   other job in the tick completes bit-identically to a run where the
//!   panicking job was never submitted. One sharp edge is documented
//!   rather than hidden: a frame that panics *after* its serial commit
//!   (prefix or completion) has already consumed tick budget, so under
//!   finite budgets a later frame in the same tick may have been shed on
//!   its account.
//! * **Quarantine.** A panic may have left the owning session's state
//!   half-mutated, so the session is *poisoned*: every later submission
//!   returns [`AmcError::SessionPoisoned`]
//!   ([`StreamSession::is_quarantined`]) until the session is evicted —
//!   [`StreamSession::evict_state`], [`Engine::maintain`], or
//!   [`Engine::evict_session`] — which drops the suspect state and lifts
//!   the quarantine. The next frame then rehydrates through the forced-key
//!   seam, bit-identical to a fresh session (the PR-6 evicted≡fresh
//!   property, extended to the poisoned path by `serve_interleaved.rs`).
//! * **Tick deadline.** [`EngineLimits::tick_deadline_ms`] is a soft
//!   per-tick budget read from an injectable [`TickClock`]
//!   ([`Engine::set_tick_clock`]; monotonic wall clock by default, a
//!   deterministic [`FakeClock`] in tests). The watchdog checks between
//!   phases, at each key-frame admission, and between prefix fan-out
//!   buckets. Degradation order on overrun: remaining *key-frame
//!   upgrades* are shed with the zero-trace [`AmcError::BudgetExceeded`]
//!   semantics (`what: "tick deadline"`) — predicted frames, which cost
//!   only a sparse suffix, still serve; already-committed work always
//!   finishes (the deadline is soft — it bounds *new* expensive work, it
//!   never abandons a frame mid-flight). Overruns and deadline sheds are
//!   counted, never silent.
//!
//! [`Engine::health`] snapshots the containment layer for operators: see
//! [`EngineHealth`] for per-field semantics. For deterministic chaos
//! testing, [`Engine::set_failure_injector`] installs a [`FailureInjector`]
//! — pure in `(phase, tick, session)` — that forces panics or delays
//! inside chosen phases; `crates/core/tests/soak_chaos.rs` drives
//! thousands of ticks of injected panics, input faults, evictions, and
//! deadline pressure through it and holds survivors bit-identical to a
//! clean oracle.
//!
//! # The single-stream wrapper guarantee
//!
//! `AmcExecutor` (and therefore `PipelinedExecutor`) is a thin wrapper
//! over the same per-session state machine ([`SessionCore`]) this module
//! runs: one session, one borrowed network, one private scratch. Every
//! output, decision, and statistic is **bit-identical** across all three
//! entry points — serial executor, pipelined executor, and engine sessions
//! (single or batched) — which `crates/core/tests/serve_interleaved.rs`
//! and `pipeline_bitident.rs` enforce. Existing single-stream callers keep
//! working unchanged; multi-stream callers get batching by switching to
//! the engine.
//!
//! # Example
//!
//! ```
//! use eva2_cnn::zoo;
//! use eva2_core::executor::AmcConfig;
//! use eva2_core::serve::Engine;
//! use eva2_tensor::GrayImage;
//! use std::sync::Arc;
//!
//! let net = Arc::new(zoo::tiny_fasterm(7).network);
//! let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
//! let mut cam_a = engine.open_session().unwrap();
//! let mut cam_b = engine.open_session().unwrap();
//! let frame = GrayImage::from_fn(48, 48, |y, x| {
//!     (120 + ((y * 7 + x * 3) % 64)) as u8
//! });
//! // Batched submission: both streams' first frames are key frames and
//! // share one batched prefix pass.
//! let results = engine.process_batch([(&mut cam_a, &frame), (&mut cam_b, &frame)]);
//! assert!(results.iter().all(|r| r.is_key()));
//! // Streams advance independently; outcomes are typed by how the frame
//! // was produced.
//! use eva2_core::serve::FrameOutcome;
//! match engine.process(&mut cam_a, &frame) {
//!     FrameOutcome::Predicted { frame, stats } => {
//!         assert!(!frame.is_key);
//!         assert_eq!(stats.frames, 1); // this frame's stats delta
//!     }
//!     other => panic!("steady scene should predict, got {other:?}"),
//! }
//! assert_eq!(cam_a.stats().frames, 2);
//! assert_eq!(cam_b.stats().frames, 1);
//! ```

// lint: hot-path

use crate::error::AmcError;
use crate::executor::{AmcConfig, AmcFrameResult, ExecStats, WarpMode};
use crate::policy::{FrameKind, FrameMetrics, KeyFramePolicy, PolicyConfig};
use crate::sparse::{RleActivation, RleEntry};
use crate::warp::{warp_activation_fixed_sparse, warp_activation_sparse};
use eva2_cnn::network::Network;
use eva2_motion::rfbme::{RfGeometry, Rfbme, RfbmeResult, RfbmeScratch};
use eva2_tensor::interp::Interpolation;
use eva2_tensor::{GemmScratch, GrayImage, SparseActivation, Tensor3};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Stored key-frame state: the pixel buffer and the sparse activation
/// buffer.
#[derive(Debug, Clone)]
struct KeyState {
    image: GrayImage,
    /// The compressed activation as the hardware stores it.
    rle: RleActivation,
    /// Non-zero view feeding the sparse-aware suffix on memoized frames.
    sparse: SparseActivation,
    /// Decoded copy kept for software-speed warping (the hardware decodes
    /// through the sparsity lanes on the fly).
    decoded: Tensor3,
}

impl KeyState {
    /// Heap bytes held by the stored buffers (allocated capacity).
    fn heap_bytes(&self) -> usize {
        self.image.heap_bytes()
            + self.rle.heap_bytes()
            + self.sparse.heap_bytes()
            + self.decoded.heap_bytes()
    }
}

/// The classification of one submitted frame, produced by
/// [`SessionCore::classify`] *without* mutating the session. A plan is
/// either committed ([`SessionCore::commit_frame`]) and executed, or
/// discarded when the engine sheds the frame — which is what lets
/// backpressure reject work without corrupting admitted streams.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FramePlan {
    kind: FrameKind,
    /// The policy said `Predicted` but the residual block error exceeded
    /// the confidence bound, so the frame was degraded to a key frame.
    forced: bool,
    metrics: Option<FrameMetrics>,
    rfbme_ops: u64,
}

impl FramePlan {
    pub(crate) fn kind(&self) -> FrameKind {
        self.kind
    }
}

/// The typed outcome of one submitted frame — what
/// [`Engine::process_batch`] returns per job. Served variants carry the
/// frame's [`AmcFrameResult`] (output tensor, MACs, warp/compression
/// detail) plus `stats`: the [`ExecStats`] delta this single frame added
/// to its session, so callers account per frame without diffing
/// snapshots. Refused variants carry the typed [`AmcError`], split by
/// what the caller should do about it.
#[derive(Debug, Clone)]
pub enum FrameOutcome {
    /// Warped (or memoized) from stored key state; suffix-only compute.
    Predicted {
        /// The served frame.
        frame: AmcFrameResult,
        /// This frame's statistics delta.
        stats: ExecStats,
    },
    /// A key frame the policy (or a first frame / rehydration) asked for:
    /// full prefix + suffix, key state refreshed.
    Key {
        /// The served frame.
        frame: AmcFrameResult,
        /// This frame's statistics delta.
        stats: ExecStats,
    },
    /// The policy said *predicted* but the residual per-pixel block error
    /// exceeded
    /// [`AmcConfig::max_residual_error`](crate::executor::AmcConfig::max_residual_error),
    /// so the engine refused to warp garbage and spent a key frame
    /// (§III-C graceful degradation).
    ForcedKey {
        /// The residual per-pixel block error that tripped the bound.
        residual: f32,
        /// The served (key) frame.
        frame: AmcFrameResult,
        /// This frame's statistics delta.
        stats: ExecStats,
    },
    /// Backpressure: a per-tick budget was exhausted before this job. The
    /// session is untouched — resubmitting next tick is bit-identical to
    /// having submitted it then.
    Shed(AmcError),
    /// The submission itself is wrong (foreign engine, retired session,
    /// off-geometry frame, or a violated internal invariant surfaced as
    /// [`AmcError::Internal`]); resubmitting the same job cannot succeed.
    Rejected(AmcError),
}

impl FrameOutcome {
    /// Wraps a refusal, classifying shed-able backpressure apart from
    /// hard rejections.
    fn from_error(e: AmcError) -> Self {
        match e {
            AmcError::BudgetExceeded { .. } => FrameOutcome::Shed(e),
            _ => FrameOutcome::Rejected(e),
        }
    }

    /// Whether the frame was served (any of the three success variants).
    pub fn is_served(&self) -> bool {
        matches!(
            self,
            FrameOutcome::Predicted { .. }
                | FrameOutcome::Key { .. }
                | FrameOutcome::ForcedKey { .. }
        )
    }

    /// Whether the frame was served as a key frame (policy-chosen or
    /// forced).
    pub fn is_key(&self) -> bool {
        matches!(
            self,
            FrameOutcome::Key { .. } | FrameOutcome::ForcedKey { .. }
        )
    }

    /// The served frame, when one was produced.
    pub fn frame(&self) -> Option<&AmcFrameResult> {
        match self {
            FrameOutcome::Predicted { frame, .. }
            | FrameOutcome::Key { frame, .. }
            | FrameOutcome::ForcedKey { frame, .. } => Some(frame),
            _ => None,
        }
    }

    /// The statistics delta this frame added to its session, when served.
    pub fn stats_delta(&self) -> Option<ExecStats> {
        match self {
            FrameOutcome::Predicted { stats, .. }
            | FrameOutcome::Key { stats, .. }
            | FrameOutcome::ForcedKey { stats, .. } => Some(*stats),
            _ => None,
        }
    }

    /// The refusal, when the frame was shed or rejected.
    pub fn error(&self) -> Option<&AmcError> {
        match self {
            FrameOutcome::Shed(e) | FrameOutcome::Rejected(e) => Some(e),
            _ => None,
        }
    }

    /// Collapses the outcome to the plain result shape, dropping the
    /// variant distinction and stats delta.
    pub fn into_result(self) -> Result<AmcFrameResult, AmcError> {
        match self {
            FrameOutcome::Predicted { frame, .. }
            | FrameOutcome::Key { frame, .. }
            | FrameOutcome::ForcedKey { frame, .. } => Ok(frame),
            FrameOutcome::Shed(e) | FrameOutcome::Rejected(e) => Err(e),
        }
    }

    /// The served frame, panicking with `msg` on a refusal — the
    /// test-and-example analogue of `Result::expect`. Panicking is this
    /// method's documented contract (serving code uses
    /// [`FrameOutcome::into_result`] instead), so the hot-path no-panic
    /// lint is waived here by design.
    #[track_caller]
    pub fn expect(self, msg: &str) -> AmcFrameResult {
        match self.into_result() {
            Ok(frame) => frame,
            Err(e) => panic!("{msg}: {e:?}"), // lint:allow(no-panic)
        }
    }

    /// The served frame, panicking on a refusal — the test-and-example
    /// analogue of `Result::unwrap`.
    #[track_caller]
    pub fn unwrap(self) -> AmcFrameResult {
        // lint:allow(no-panic)
        self.expect("frame was not served")
    }
}

/// Runs `f` over `items`, split round-robin across one scoped thread per
/// entry of `states` (each worker gets exclusive use of its state — this
/// is how per-worker `GemmScratch` stays lock-free). With one state, or
/// one item, everything runs inline on the caller's thread: the
/// single-worker engine spawns nothing.
///
/// Results travel through the items themselves (`&mut` slots), so work
/// lands deterministically regardless of scheduling.
fn fan_out<T, W, F>(states: &mut [W], items: Vec<T>, f: F)
where
    T: Send,
    W: Send,
    F: Fn(&mut W, T) + Sync,
{
    if states.len() <= 1 || items.len() <= 1 {
        // `worker_threads` is validated ≥ 1, so a missing state is
        // unreachable; bailing out leaves the items' result slots empty,
        // which the collection seam reports as `AmcError::Internal`.
        let Some(state) = states.first_mut() else {
            return;
        };
        for item in items {
            f(state, item);
        }
        return;
    }
    let n = states.len();
    let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % n].push(item);
    }
    let f = &f;
    std::thread::scope(|scope| {
        for (state, bucket) in states.iter_mut().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for item in bucket {
                    f(state, item);
                }
            });
        }
    });
}

// lint: containment
/// The engine's one panic-containment seam. `std::panic::catch_unwind` may
/// appear in this module and nowhere else in the workspace (enforced by
/// the `eva2-lint` rule `contained-unwind`): panic-swallowing is a serving
/// decision, and letting it leak into kernels or analysis passes would
/// hide real bugs instead of containing them at the per-frame boundary.
mod contain {
    use super::{AmcError, EnginePhase, FailureAction, FailureInjector, TickClock};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs one per-frame job, converting an escaping panic into
    /// [`AmcError::WorkerPanicked`] naming `phase`. `AssertUnwindSafe` is
    /// sound here because the caller quarantines the owning session on
    /// `Err` — the possibly half-mutated state is never trusted again
    /// until it is evicted and rehydrated.
    pub(super) fn run<T>(phase: &'static str, job: impl FnOnce() -> T) -> Result<T, AmcError> {
        catch_unwind(AssertUnwindSafe(job)).map_err(|panic| {
            let payload = if let Some(s) = panic.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = panic.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            AmcError::WorkerPanicked { phase, payload }
        })
    }

    /// The chaos hook: applies the injector's scripted action for
    /// `(phase, tick, session)`, if an injector is installed. Called only
    /// from inside a [`run`] job, so an injected panic is always contained
    /// one frame up. Payloads start with `"chaos:"` so test panic hooks
    /// can silence exactly the injected faults.
    pub(super) fn chaos(
        injector: Option<&dyn FailureInjector>,
        clock: &dyn TickClock,
        phase: EnginePhase,
        tick: u64,
        session: u64,
    ) {
        let Some(injector) = injector else {
            return;
        };
        match injector.action(phase, tick, session) {
            FailureAction::None => {}
            FailureAction::Panic => {
                // lint:allow(no-panic)
                panic!("chaos: injected {phase:?} panic (tick {tick}, session {session})")
            }
            FailureAction::Delay { ms } => clock.sleep_us(ms.saturating_mul(1000)),
        }
    }
}

/// The clock [`Engine::process_batch`] reads its tick-deadline watchdog
/// from. Injectable ([`Engine::set_tick_clock`]) so deadline behaviour is
/// deterministic in tests: production uses the default [`MonotonicClock`],
/// tests install a [`FakeClock`] and advance it by hand (injected
/// [`FailureAction::Delay`]s go through [`TickClock::sleep_us`], so a fake
/// clock turns them into pure time arithmetic).
pub trait TickClock: Send + Sync {
    /// Microseconds elapsed since an arbitrary fixed origin.
    fn now_us(&self) -> u64;
    /// Blocks (or, on a fake clock, pretends to block) for `us`
    /// microseconds.
    fn sleep_us(&self, us: u64);
}

/// Wall-clock [`TickClock`]: `std::time::Instant` against a fixed origin.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TickClock for MonotonicClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn sleep_us(&self, us: u64) {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

/// Deterministic [`TickClock`] for tests: time advances only when the test
/// says so ([`FakeClock::advance_us`]) or when a sleep is requested —
/// [`TickClock::sleep_us`] advances the clock instead of blocking, so
/// injected delays exert deadline pressure without slowing the test down.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Relaxed);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_us(ms.saturating_mul(1000));
    }
}

impl TickClock for FakeClock {
    fn now_us(&self) -> u64 {
        self.now.load(Relaxed)
    }

    fn sleep_us(&self, us: u64) {
        self.advance_us(us);
    }
}

/// Which serving phase a [`FailureInjector`] is being consulted in (the
/// same names [`AmcError::WorkerPanicked`] reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EnginePhase {
    /// Per-stream RFBME (speculative fan-out or the inline fallback).
    Estimate,
    /// The serial admission walk's classify/commit steps.
    Admit,
    /// A key-frame batched-prefix bucket.
    Prefix,
    /// Per-frame completion (sparse encode + suffix, or warp + suffix).
    Complete,
}

impl EnginePhase {
    fn index(self) -> u64 {
        match self {
            EnginePhase::Estimate => 0,
            EnginePhase::Admit => 1,
            EnginePhase::Prefix => 2,
            EnginePhase::Complete => 3,
        }
    }
}

/// What a [`FailureInjector`] asks the engine to do inside one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Proceed normally.
    None,
    /// Panic inside the job (always contained; the frame fails with
    /// [`AmcError::WorkerPanicked`] and its session is quarantined).
    Panic,
    /// Sleep `ms` milliseconds through the engine's [`TickClock`] —
    /// deadline pressure, deterministic under a [`FakeClock`].
    Delay {
        /// Milliseconds to sleep.
        ms: u64,
    },
}

/// Deterministic failure-injection seam for chaos testing
/// ([`Engine::set_failure_injector`]). Implementations must be pure in
/// `(phase, tick, session)` so chaos runs replay bit-identically;
/// [`SeededChaos`] is the stock seeded implementation.
pub trait FailureInjector: Send + Sync {
    /// The action to take for this `(phase, tick, session)` job.
    fn action(&self, phase: EnginePhase, tick: u64, session: u64) -> FailureAction;
}

/// Stock [`FailureInjector`]: a splitmix64-style hash of
/// `(seed, phase, tick, session)` rolls a per-mille die for panics and
/// delays. Pure and allocation-free, so two engines with the same seed see
/// the same faults at the same jobs.
#[derive(Debug, Clone, Copy)]
pub struct SeededChaos {
    /// Seed fixing every roll.
    pub seed: u64,
    /// Panic probability per job, in 1/1000ths.
    pub panic_per_mille: u64,
    /// Delay probability per job, in 1/1000ths (rolled after panics).
    pub delay_per_mille: u64,
    /// Length of an injected delay.
    pub delay_ms: u64,
}

impl SeededChaos {
    /// A chaos script panicking ~6% and delaying ~4% of jobs, 2 ms per
    /// delay.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_per_mille: 60,
            delay_per_mille: 40,
            delay_ms: 2,
        }
    }

    fn roll(&self, phase: EnginePhase, tick: u64, session: u64) -> u64 {
        let mut x = self.seed
            ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ session.wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ phase.index().wrapping_mul(0x94D0_49BB_1331_11EB);
        // splitmix64 finalizer: avalanche the combined key so nearby
        // (tick, session) pairs decorrelate.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) % 1000
    }
}

impl FailureInjector for SeededChaos {
    fn action(&self, phase: EnginePhase, tick: u64, session: u64) -> FailureAction {
        let roll = self.roll(phase, tick, session);
        if roll < self.panic_per_mille {
            FailureAction::Panic
        } else if roll < self.panic_per_mille + self.delay_per_mille {
            FailureAction::Delay { ms: self.delay_ms }
        } else {
            FailureAction::None
        }
    }
}

/// Operator-facing snapshot of the engine's failure-containment layer
/// ([`Engine::health`]) — the §III-C degradation signal at engine scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineHealth {
    /// Ticks processed (one per [`Engine::process_batch`] call).
    pub ticks: u64,
    /// Frames served across all sessions (key, forced-key, or predicted).
    pub frames_served: u64,
    /// Frame jobs that failed with a contained panic
    /// ([`AmcError::WorkerPanicked`]). A single prefix-bucket panic fails
    /// every frame in its bucket, so this counts frames lost, not unwinds.
    pub panics_caught: u64,
    /// Sessions quarantined so far (each panic outcome quarantines its
    /// owning session; a session re-poisoned after recovery counts again).
    pub quarantines: u64,
    /// Live sessions currently quarantined (poisoned, not yet evicted or
    /// retired).
    pub quarantined_sessions: usize,
    /// Sessions evicted by [`Engine::maintain`] (idle/LRU) or
    /// [`Engine::evict_session`]. Per-session budget trims inside a tick
    /// are counted per session in [`ExecStats::evictions`] instead.
    pub evicted_sessions: u64,
    /// Ticks that overran [`EngineLimits::tick_deadline_ms`] at any
    /// watchdog checkpoint.
    pub deadline_overruns: u64,
    /// Key-frame upgrades shed by the deadline watchdog
    /// (`BudgetExceeded { what: "tick deadline" }`).
    pub deadline_sheds: u64,
    /// Frames shed by the frame/key per-tick budgets (all other
    /// [`FrameOutcome::Shed`] outcomes).
    pub budget_sheds: u64,
    /// Key frames forced by the residual confidence bound across all
    /// sessions ([`FrameOutcome::ForcedKey`]).
    pub forced_keys: u64,
    /// Median of the last [`TICK_RING`] tick durations, microseconds
    /// (0 until a tick completes).
    pub tick_p50_us: u64,
    /// 99th percentile of the last [`TICK_RING`] tick durations,
    /// microseconds.
    pub tick_p99_us: u64,
}

/// Ring-buffer depth behind [`EngineHealth::tick_p50_us`] /
/// [`EngineHealth::tick_p99_us`].
pub const TICK_RING: usize = 256;

/// Mutable half of [`EngineHealth`]: the counters the engine accumulates
/// serially at the end of every tick, plus the tick-duration ring.
#[derive(Debug)]
struct HealthState {
    ticks: u64,
    frames_served: u64,
    panics_caught: u64,
    quarantines: u64,
    evicted_sessions: u64,
    deadline_overruns: u64,
    deadline_sheds: u64,
    budget_sheds: u64,
    forced_keys: u64,
    /// Last [`TICK_RING`] tick durations in µs, written circularly.
    recent_us: Vec<u64>,
    next_slot: usize,
}

impl Default for HealthState {
    /// The ring is allocated to its full capacity up front so
    /// `record_tick` never allocates on the serving hot path (the
    /// steady-state allocation audit counts every transient).
    fn default() -> Self {
        Self {
            ticks: 0,
            frames_served: 0,
            panics_caught: 0,
            quarantines: 0,
            evicted_sessions: 0,
            deadline_overruns: 0,
            deadline_sheds: 0,
            budget_sheds: 0,
            forced_keys: 0,
            recent_us: Vec::with_capacity(TICK_RING),
            next_slot: 0,
        }
    }
}

impl HealthState {
    fn record_tick(&mut self, us: u64) {
        if self.recent_us.len() < TICK_RING {
            self.recent_us.push(us);
        } else {
            self.recent_us[self.next_slot] = us;
        }
        self.next_slot = (self.next_slot + 1) % TICK_RING;
    }

    fn percentile(sorted: &[u64], p: usize) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
    }
}

/// The per-stream AMC state machine: everything one video stream needs
/// between frames, and nothing a stream shares with its neighbours.
///
/// Both [`StreamSession`] and the single-stream
/// [`AmcExecutor`](crate::executor::AmcExecutor) wrap exactly this type,
/// which is what makes their outputs bit-identical: there is one
/// implementation of the frame state machine, parameterised on a borrowed
/// network and GEMM scratch at each call.
#[derive(Debug)]
pub(crate) struct SessionCore {
    target: usize,
    rf: RfGeometry,
    rfbme: Rfbme,
    rfbme_scratch: RfbmeScratch,
    warp_mode: WarpMode,
    fixed_point: bool,
    sparsity_threshold: f32,
    max_residual_error: f32,
    /// Frame geometry the network was built for; every submitted frame is
    /// validated against it before any state is touched.
    input_h: usize,
    input_w: usize,
    policy: Box<dyn KeyFramePolicy>,
    state: Option<KeyState>,
    frames_since_key: usize,
    stats: ExecStats,
    prefix_macs: u64,
    total_macs: u64,
}

impl SessionCore {
    /// Builds a core for `net` under `config`, validating both.
    pub(crate) fn new(net: &Network, config: &AmcConfig) -> Result<Self, AmcError> {
        config.validate()?;
        let (target, rf) = config.target.geometry(net)?;
        config.verify_resolved(net, target)?;
        Ok(Self {
            target,
            rf,
            rfbme: Rfbme::new(rf, config.search),
            rfbme_scratch: RfbmeScratch::new(),
            warp_mode: config.warp,
            fixed_point: config.fixed_point,
            sparsity_threshold: config.sparsity_threshold,
            max_residual_error: config.max_residual_error,
            input_h: net.input_shape().height,
            input_w: net.input_shape().width,
            policy: config.policy.build(),
            state: None,
            frames_since_key: 0,
            stats: ExecStats::default(),
            prefix_macs: net.prefix_macs(target),
            total_macs: net.total_macs(),
        })
    }

    pub(crate) fn target(&self) -> usize {
        self.target
    }

    pub(crate) fn rf(&self) -> RfGeometry {
        self.rf
    }

    pub(crate) fn rfbme(&self) -> Rfbme {
        self.rfbme
    }

    pub(crate) fn stats(&self) -> ExecStats {
        self.stats
    }

    pub(crate) fn prefix_macs(&self) -> u64 {
        self.prefix_macs
    }

    pub(crate) fn total_macs(&self) -> u64 {
        self.total_macs
    }

    pub(crate) fn policy_name(&self) -> &str {
        self.policy.name()
    }

    pub(crate) fn reset(&mut self) {
        self.state = None;
        self.frames_since_key = 0;
    }

    pub(crate) fn has_state(&self) -> bool {
        self.state.is_some()
    }

    /// Drops the stored key state *and* the RFBME scratch, returning the
    /// session to its just-opened memory footprint. The next frame
    /// rehydrates through the forced-key seam (no state ⇒ key frame) and
    /// is bit-identical to a fresh session from that frame on — scratch
    /// contents never influence results (see `RfbmeScratch`). Returns
    /// whether key state was actually present; only real state drops count
    /// in [`ExecStats::evictions`].
    pub(crate) fn evict_state(&mut self) -> bool {
        let had_state = self.state.is_some();
        self.state = None;
        self.frames_since_key = 0;
        self.rfbme_scratch = RfbmeScratch::new();
        if had_state {
            self.stats.evictions += 1;
        }
        had_state
    }

    /// Audited heap use of this session: the struct itself plus the stored
    /// key-frame buffers and the RFBME scratch, by allocated capacity.
    pub(crate) fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rfbme_scratch.heap_bytes()
            + self.state.as_ref().map_or(0, KeyState::heap_bytes)
    }

    /// Rejects a frame whose geometry differs from the network's input
    /// shape. The check is network-anchored rather than state-anchored so
    /// it also catches a wrong-resolution *first* frame (and frames after
    /// eviction or reset) before any CNN or RFBME work touches them —
    /// RFBME, warping, and the CNN head are all undefined off-geometry.
    pub(crate) fn check_geometry(&self, image: &GrayImage) -> Result<(), AmcError> {
        if (self.input_h, self.input_w) != (image.height(), image.width()) {
            return Err(AmcError::FrameGeometryMismatch {
                expected_height: self.input_h,
                expected_width: self.input_w,
                got_height: image.height(),
                got_width: image.width(),
            });
        }
        Ok(())
    }

    pub(crate) fn key_activation(&self) -> Option<&RleActivation> {
        self.state.as_ref().map(|s| &s.rle)
    }

    pub(crate) fn key_image(&self) -> Option<&GrayImage> {
        self.state.as_ref().map(|s| &s.image)
    }

    /// Runs this stream's RFBME from the stored key frame to `image`
    /// (`None` when no key state exists yet).
    pub(crate) fn estimate_motion(&mut self, image: &GrayImage) -> Option<RfbmeResult> {
        let state = self.state.as_ref()?;
        Some(
            self.rfbme
                .estimate_with(&state.image, image, &mut self.rfbme_scratch),
        )
    }

    /// Classifies a frame without committing anything: derives the metrics
    /// the incoming frame *would* see, asks the policy, and applies the
    /// residual-error confidence bound. Counters are untouched, so a plan
    /// may be discarded (frame shed) with no trace.
    pub(crate) fn classify(&mut self, motion: &Option<RfbmeResult>) -> FramePlan {
        let metrics = motion
            .as_ref()
            .map(|m| FrameMetrics::from_rfbme(m, self.frames_since_key + 1));
        let rfbme_ops = motion.as_ref().map_or(0, |m| m.ops());
        let mut kind = match &metrics {
            None => FrameKind::Key,
            Some(m) => self.policy.decide(m),
        };
        let mut forced = false;
        if kind == FrameKind::Predicted {
            if let Some(m) = &metrics {
                // Graceful degradation (§III-C): a residual this large
                // means motion estimation failed to explain the frame
                // (occlusion, corruption, a cut the policy tolerated) —
                // warping would propagate garbage, so spend a key frame.
                if m.block_error_per_pixel > self.max_residual_error {
                    kind = FrameKind::Key;
                    forced = true;
                }
            }
        }
        FramePlan {
            kind,
            forced,
            metrics,
            rfbme_ops,
        }
    }

    /// Commits an admitted plan: bumps the per-stream frame and RFBME
    /// counters. Must be followed by exactly one matching
    /// `finish_key_frame`/`finish_predicted`.
    pub(crate) fn commit_frame(&mut self, plan: &FramePlan, motion: &Option<RfbmeResult>) {
        self.stats.frames += 1;
        self.frames_since_key += 1;
        self.stats.rfbme_ops += plan.rfbme_ops;
        if let Some(m) = motion.as_ref() {
            self.stats.rfbme_candidates += m.search.candidates;
            self.stats.rfbme_level0_rejects += m.search.rejected_level0;
            self.stats.rfbme_level1_rejects += m.search.rejected_level1;
        }
        if plan.forced {
            self.stats.forced_keys += 1;
        }
    }

    /// Completes a key frame from its already-computed prefix activation:
    /// encodes the sparse store, runs the suffix, refreshes the key state.
    pub(crate) fn finish_key_frame(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        image: &GrayImage,
        act: Tensor3,
        metrics: Option<FrameMetrics>,
        rfbme_ops: u64,
    ) -> AmcFrameResult {
        let rle = RleActivation::encode(&act, self.sparsity_threshold);
        let compression = rle.compression();
        // The suffix consumes the *quantized* activation on real hardware;
        // feed it straight from the sparse store (skip-zero, no densify) so
        // key and predicted frames share numerics.
        let sparse = rle.to_sparse();
        let output = net.forward_suffix_sparse(&sparse, self.target, scratch);
        let decoded = sparse.to_dense();
        self.state = Some(KeyState {
            image: image.clone(),
            rle,
            sparse,
            decoded,
        });
        self.policy.note_key_frame();
        self.frames_since_key = 0;
        self.stats.key_frames += 1;
        self.stats.macs += self.total_macs;
        AmcFrameResult {
            output,
            is_key: true,
            macs_executed: self.total_macs,
            rfbme_ops,
            warp: None,
            metrics,
            compression: Some(compression),
        }
    }

    /// Completes a predicted frame: warps (or memoizes) the stored
    /// activation and runs the sparse suffix.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::Internal`] when no key state is stored — a
    /// violated invariant (classification decides `Predicted` only with
    /// state present), surfaced as a typed error instead of a panic so a
    /// serving process survives it.
    pub(crate) fn finish_predicted(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        motion: &RfbmeResult,
        metrics: Option<FrameMetrics>,
        rfbme_ops: u64,
    ) -> Result<AmcFrameResult, AmcError> {
        let Some(state) = self.state.as_ref() else {
            return Err(AmcError::Internal {
                what: "predicted frame requires stored key state",
            });
        };
        // Both arms feed the suffix through the sparse entry point: zero
        // runs in the stored/warped activation are skipped, not densified
        // and multiplied (§IV skip-zero behaviour). Warping emits the
        // sparse representation *directly* (fused warp→sparse, see
        // `crate::warp`): a predicted frame never materialises a dense
        // activation tensor, exactly like the hardware's sparse activation
        // memory. The fused entries are bit-identical to
        // dense-warp-then-`from_dense`, so outputs match the PR-4 path.
        let (output, warp_stats) = match self.warp_mode {
            WarpMode::Memoize => {
                let output = net.forward_suffix_sparse(&state.sparse, self.target, scratch);
                (output, None)
            }
            WarpMode::MotionCompensate { bilinear } => {
                let field = &motion.field;
                let (sparse, ws) = if self.fixed_point {
                    warp_activation_fixed_sparse(&state.decoded, field, self.rf.stride)
                } else {
                    let method = if bilinear {
                        Interpolation::Bilinear
                    } else {
                        Interpolation::NearestNeighbor
                    };
                    warp_activation_sparse(&state.decoded, field, self.rf.stride, method)
                };
                let output = net.forward_suffix_sparse(&sparse, self.target, scratch);
                (output, Some(ws))
            }
        };
        if let Some(ws) = &warp_stats {
            self.stats.warp_interpolations += ws.interpolations;
        }
        let suffix_macs = self.total_macs - self.prefix_macs;
        self.stats.macs += suffix_macs;
        Ok(AmcFrameResult {
            output,
            is_key: false,
            macs_executed: suffix_macs,
            rfbme_ops,
            warp: warp_stats,
            metrics,
            compression: None,
        })
    }

    /// The serial whole-frame path: estimate, decide, execute.
    pub(crate) fn process(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        image: &GrayImage,
    ) -> Result<AmcFrameResult, AmcError> {
        self.check_geometry(image)?;
        // EVA² always runs RFBME — its block errors drive the key-frame
        // choice module even when warping is disabled (memoization mode).
        let motion = self.estimate_motion(image);
        self.process_with_motion_hook(net, scratch, image, motion, |_| {})
    }

    /// [`SessionCore::process`] with an externally computed motion
    /// estimate and a hook invoked right after the key-frame decision,
    /// *before* any CNN or warp work — the pipelined executor's dispatch
    /// point for the next frame's estimate.
    pub(crate) fn process_with_motion_hook(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        image: &GrayImage,
        motion: Option<RfbmeResult>,
        after_decision: impl FnOnce(FrameKind),
    ) -> Result<AmcFrameResult, AmcError> {
        self.check_geometry(image)?;
        let plan = self.classify(&motion);
        self.commit_frame(&plan, &motion);
        after_decision(plan.kind);
        match plan.kind {
            FrameKind::Key => {
                let input = image.to_tensor();
                let act = net.forward_prefix_scratch(&input, self.target, scratch);
                Ok(self.finish_key_frame(net, scratch, image, act, plan.metrics, plan.rfbme_ops))
            }
            FrameKind::Predicted => {
                let motion = motion.ok_or(AmcError::Internal {
                    what: "predicted frame requires a motion estimate",
                })?;
                self.finish_predicted(net, scratch, &motion, plan.metrics, plan.rfbme_ops)
            }
        }
    }
}

/// Resource limits a serving [`Engine`] enforces — the admission-control,
/// backpressure, and memory-budget knobs of the
/// [lifecycle](self#lifecycle--failure-modes). The default is
/// [`EngineLimits::unlimited`]: every limit at its type's maximum, which
/// preserves the pre-lifecycle behaviour exactly (nothing is ever shed or
/// evicted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineLimits {
    /// Maximum concurrently admitted sessions; `open_session*` beyond this
    /// returns [`AmcError::EngineAtCapacity`]. Dropped and retired
    /// sessions free their slots.
    pub max_sessions: usize,
    /// Maximum frames one [`Engine::process_batch`] tick admits; excess
    /// frames are shed with [`AmcError::BudgetExceeded`] and may be
    /// resubmitted next tick.
    pub max_frames_per_tick: usize,
    /// Maximum key frames one tick admits — key frames cost a full CNN
    /// prefix, so this is the knob that bounds tail latency when many
    /// streams cut scenes at once. Excess *key* frames are shed (predicted
    /// frames in the same tick still run).
    pub max_key_frames_per_tick: usize,
    /// Per-session memory budget: a session whose
    /// [`StreamSession::memory_footprint`] exceeds this after a key frame
    /// has its state evicted immediately (it degrades to bounded-memory
    /// all-key serving rather than growing).
    pub max_session_bytes: usize,
    /// Engine-wide memory budget over all admitted sessions' audited
    /// footprints, enforced by LRU eviction in [`Engine::maintain`].
    pub max_total_bytes: usize,
    /// A session idle for at least this many ticks has its key state
    /// evicted by [`Engine::maintain`].
    pub idle_evict_ticks: u64,
    /// Soft per-tick deadline in milliseconds, read from the engine's
    /// [`TickClock`]. Once a tick has run past it, remaining *key-frame*
    /// upgrades are shed with zero-trace
    /// [`AmcError::BudgetExceeded`]`{ what: "tick deadline" }` semantics
    /// (predicted frames still serve; committed work always finishes) and
    /// the overrun is counted in [`EngineHealth::deadline_overruns`].
    /// `u64::MAX` (the default) disables the watchdog.
    pub tick_deadline_ms: u64,
    /// Worker threads one [`Engine::process_batch`] tick fans out over
    /// (see the [module docs](self#threading-model--determinism)). `1`
    /// (the default) runs every phase inline on the calling thread and
    /// spawns nothing. This is a *forced* count, not a hint (cf. the GEMM
    /// `gemm_nn_threads` hook): asking for 3 workers on a single-CPU host
    /// still splits the work three ways, which is what makes the threaded
    /// code path testable on a one-core container.
    pub worker_threads: usize,
}

impl EngineLimits {
    /// No limits: nothing is refused, shed, or evicted, and every tick
    /// runs inline on the calling thread (`worker_threads: 1`).
    pub const fn unlimited() -> Self {
        Self {
            max_sessions: usize::MAX,
            max_key_frames_per_tick: usize::MAX,
            max_frames_per_tick: usize::MAX,
            max_session_bytes: usize::MAX,
            max_total_bytes: usize::MAX,
            idle_evict_ticks: u64::MAX,
            tick_deadline_ms: u64::MAX,
            worker_threads: 1,
        }
    }

    /// Starts a validating builder from the unlimited defaults — the same
    /// pattern as [`AmcConfig::builder`](crate::executor::AmcConfig):
    /// chain setters, then [`EngineLimitsBuilder::build`] validates once.
    pub fn builder() -> EngineLimitsBuilder {
        EngineLimitsBuilder {
            limits: Self::unlimited(),
        }
    }

    /// Checks every limit invariant: a zero limit would admit no work at
    /// all (or evict on every tick) and is always a configuration mistake.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::InvalidConfig`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), AmcError> {
        let invalid = |reason: &'static str| Err(AmcError::InvalidConfig { reason });
        if self.max_sessions == 0 {
            return invalid("engine limit max_sessions must be at least 1");
        }
        if self.max_frames_per_tick == 0 {
            return invalid("engine limit max_frames_per_tick must be at least 1");
        }
        if self.max_key_frames_per_tick == 0 {
            return invalid("engine limit max_key_frames_per_tick must be at least 1");
        }
        if self.max_session_bytes == 0 {
            return invalid("engine limit max_session_bytes must be at least 1");
        }
        if self.max_total_bytes == 0 {
            return invalid("engine limit max_total_bytes must be at least 1");
        }
        if self.idle_evict_ticks == 0 {
            return invalid("engine limit idle_evict_ticks must be at least 1");
        }
        if self.tick_deadline_ms == 0 {
            return invalid("engine limit tick_deadline_ms must be at least 1");
        }
        if self.worker_threads == 0 {
            return invalid("engine limit worker_threads must be at least 1");
        }
        Ok(())
    }
}

impl Default for EngineLimits {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Validating builder for [`EngineLimits`], mirroring
/// [`AmcConfigBuilder`](crate::executor::AmcConfigBuilder): every setter
/// is chainable, and [`build`](Self::build) runs
/// [`EngineLimits::validate`] so an invalid combination is caught at
/// construction rather than at [`Engine::with_limits`].
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `build` is called"]
pub struct EngineLimitsBuilder {
    limits: EngineLimits,
}

impl EngineLimitsBuilder {
    /// Sets [`EngineLimits::max_sessions`].
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.limits.max_sessions = n;
        self
    }

    /// Sets [`EngineLimits::max_frames_per_tick`].
    pub fn max_frames_per_tick(mut self, n: usize) -> Self {
        self.limits.max_frames_per_tick = n;
        self
    }

    /// Sets [`EngineLimits::max_key_frames_per_tick`].
    pub fn max_key_frames_per_tick(mut self, n: usize) -> Self {
        self.limits.max_key_frames_per_tick = n;
        self
    }

    /// Sets [`EngineLimits::max_session_bytes`].
    pub fn max_session_bytes(mut self, n: usize) -> Self {
        self.limits.max_session_bytes = n;
        self
    }

    /// Sets [`EngineLimits::max_total_bytes`].
    pub fn max_total_bytes(mut self, n: usize) -> Self {
        self.limits.max_total_bytes = n;
        self
    }

    /// Sets [`EngineLimits::idle_evict_ticks`].
    pub fn idle_evict_ticks(mut self, n: u64) -> Self {
        self.limits.idle_evict_ticks = n;
        self
    }

    /// Sets [`EngineLimits::tick_deadline_ms`].
    pub fn tick_deadline_ms(mut self, ms: u64) -> Self {
        self.limits.tick_deadline_ms = ms;
        self
    }

    /// Sets [`EngineLimits::worker_threads`].
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.limits.worker_threads = n;
        self
    }

    /// Derives the tick and memory limits from the static cost model and
    /// a deployment envelope: a per-tick latency SLO (`slo_ms`) and the
    /// host's sustained compute (`gflops`, counting one MAC as two
    /// flops) — replacing hand-tuned numbers with
    /// [`CostSummary::capacity_plan`](eva2_analysis::CostSummary::capacity_plan)
    /// over (`net`, `config`):
    ///
    /// * [`EngineLimits::max_frames_per_tick`] — the tick's MAC budget
    ///   divided by the amortized per-frame cost at the policy's key-frame
    ///   gap, charging predicted frames their full static op *bound*
    ///   (suffix + RFBME + warp), so an admitted tick fits the SLO even
    ///   when motion-search pruning never fires;
    /// * [`EngineLimits::max_key_frames_per_tick`] — the budget in whole
    ///   key frames;
    /// * [`EngineLimits::max_sessions`] — one stream per frame slot (each
    ///   live stream submits one frame per tick);
    /// * [`EngineLimits::max_session_bytes`] — [`session_memory_bound`],
    ///   the static per-session worst case (a bound the audited footprint
    ///   can never exceed, so SLO-derived limits never degrade a session);
    /// * [`EngineLimits::max_total_bytes`] — that bound across every
    ///   admitted session.
    ///
    /// A budget too small for even one key frame is clamped to one frame
    /// per tick — the plan's `W-CAP-001` finding; call
    /// [`AmcConfig::analyze`](crate::executor::AmcConfig::analyze) and
    /// `capacity_plan` directly to inspect it.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the target cannot be resolved for `net`,
    /// or [`AmcError::InvalidConfig`] when the analysis could not build a
    /// cost model for the pair (`W-COST-002`).
    pub fn derive_from_slo(
        mut self,
        net: &Network,
        config: &AmcConfig,
        slo_ms: f64,
        gflops: f64,
    ) -> Result<Self, AmcError> {
        let report = config.analyze(net)?;
        let Some(cost) = report.cost else {
            return Err(AmcError::InvalidConfig {
                reason: "SLO derivation needs the static cost model, which analysis \
                         could not build for this network/config (W-COST-002)",
            });
        };
        let key_gap = match config.policy {
            PolicyConfig::AlwaysKey => 1,
            PolicyConfig::StaticRate { period } => period.max(1),
            PolicyConfig::BlockError { max_gap, .. }
            | PolicyConfig::MotionMagnitude { max_gap, .. } => max_gap.max(1),
        };
        let session_bytes = session_memory_bound(net, config)?;
        let plan = cost.capacity_plan(slo_ms, gflops, key_gap, session_bytes);
        self.limits.max_frames_per_tick = plan.max_frames_per_tick;
        self.limits.max_key_frames_per_tick = plan.max_key_frames_per_tick;
        self.limits.max_sessions = plan.max_frames_per_tick;
        self.limits.max_session_bytes = session_bytes;
        self.limits.max_total_bytes = plan.max_total_bytes;
        Ok(self)
    }

    /// Validates and returns the limits.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::InvalidConfig`] naming the violated invariant
    /// (see [`EngineLimits::validate`]).
    pub fn build(self) -> Result<EngineLimits, AmcError> {
        self.limits.validate()?;
        Ok(self.limits)
    }
}

/// Static upper bound on [`StreamSession::memory_footprint`] for any
/// stream served by (`net`, `config`) — the per-session term of the
/// SLO-derived memory budget
/// ([`EngineLimitsBuilder::derive_from_slo`]).
///
/// The bound charges every stored buffer at its worst-case allocated
/// capacity for the network's input geometry:
///
/// * the key image (`h·w` pixel bytes);
/// * the RLE store, all target activation values non-zero, with each
///   push-grown channel vector rounded up to its next power-of-two
///   capacity;
/// * the sparse non-zero view at one `(u32, f32)` entry per activation
///   value (its channel vectors are sized exactly from the RLE entry
///   counts);
/// * the decoded f32 copy of the target activation;
/// * the RFBME scratch at its steady-state bound
///   ([`Rfbme::scratch_bytes_bound`]).
///
/// The footprint audit counts allocated capacity, not length, which is
/// why capacity rounding (not just worst-case length) is charged.
///
/// # Errors
///
/// Returns [`AmcError`] when `config` is invalid or its target cannot be
/// resolved for `net`.
pub fn session_memory_bound(net: &Network, config: &AmcConfig) -> Result<usize, AmcError> {
    use std::mem::size_of;
    config.validate()?;
    let (target, rf) = config.target.geometry(net)?;
    let input = net.input_shape();
    let mut act = input;
    for layer in &net.layers()[..=target] {
        act = layer.output_shape(act);
    }
    let plane = act.height.saturating_mul(act.width);
    // Push-grown vectors double from a minimum of 4, so their capacity
    // tops out at the next power of two above the worst-case length.
    let npot = |n: usize| n.next_power_of_two().max(4);
    let vec_header = size_of::<Vec<u8>>();
    let image = input.height.saturating_mul(input.width);
    let rle = act.channels.saturating_mul(vec_header).saturating_add(
        act.channels
            .saturating_mul(npot(plane) * size_of::<RleEntry>()),
    );
    let sparse = act
        .channels
        .saturating_mul(vec_header)
        .saturating_add(act.channels.saturating_mul(plane * size_of::<(u32, f32)>()));
    let decoded = act.len().saturating_mul(size_of::<f32>());
    let scratch = Rfbme::new(rf, config.search).scratch_bytes_bound(input.height, input.width);
    Ok(size_of::<SessionCore>()
        .saturating_add(image)
        .saturating_add(rle)
        .saturating_add(sparse)
        .saturating_add(decoded)
        .saturating_add(scratch))
}

/// Engine-side bookkeeping for one admitted session, shared through an
/// [`Arc`]: the session owns the strong reference, the engine holds a
/// [`Weak`] — so dropping a [`StreamSession`] frees its admission slot
/// with no unregister call, and the engine can observe recency and
/// audited footprint without borrowing the session.
#[derive(Debug)]
struct SessionSlot {
    /// Tick of the last admitted frame (LRU ordering for eviction).
    last_tick: AtomicU64,
    /// Audited footprint as of the last completed frame.
    bytes: AtomicUsize,
    /// Set by [`Engine::evict_session`]: admission is revoked and further
    /// submissions return [`AmcError::SessionEvicted`].
    retired: AtomicBool,
    /// Set when a contained panic escaped a job holding this session's
    /// state: the session is quarantined and submissions return
    /// [`AmcError::SessionPoisoned`] until the state is evicted
    /// ([`StreamSession::evict_state`] clears the flag).
    poisoned: AtomicBool,
}

/// A serving engine: one network, shared scratch pools, any number of
/// independent [`StreamSession`]s. See the [module docs](self).
pub struct Engine {
    net: Arc<Network>,
    base: AmcConfig,
    limits: EngineLimits,
    target: usize,
    rf: RfGeometry,
    prefix_macs: u64,
    total_macs: u64,
    /// Per-worker im2col/pack pools — one `GemmScratch` per
    /// [`EngineLimits::worker_threads`], so each worker's CNN hot path is
    /// lock-free and steady-state serving allocates no convolution
    /// scratch no matter how many streams are open. Index 0 is the
    /// calling thread's pool (the only one touched when inline).
    scratches: Vec<GemmScratch>,
    /// Process-unique engine identity, stamped into every session so
    /// cross-engine session use fails loudly instead of silently running
    /// one engine's key state against another engine's network.
    engine_id: u64,
    next_session: u64,
    /// One `process_batch` call = one tick (the backpressure and idleness
    /// clock).
    tick: u64,
    /// Weak handles to every admitted session's bookkeeping slot; dead
    /// weaks (dropped sessions) are pruned on admission and maintenance.
    slots: Vec<Weak<SessionSlot>>,
    /// Deadline-watchdog clock ([`Engine::set_tick_clock`]); monotonic
    /// wall clock unless a test injects a [`FakeClock`].
    clock: Arc<dyn TickClock>,
    /// Chaos hook ([`Engine::set_failure_injector`]); `None` in
    /// production, where every `contain::chaos` call is a no-op.
    injector: Option<Arc<dyn FailureInjector>>,
    /// Containment counters and the tick-duration ring behind
    /// [`Engine::health`].
    health: HealthState,
}

/// Source of process-unique [`Engine`] identities.
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(net={}, target={}, rf={:?}, sessions_opened={}, tick={})",
            self.net.name(),
            self.target,
            self.rf,
            self.next_session,
            self.tick
        )
    }
}

impl Engine {
    /// Creates an engine over `net` with `config` as the default session
    /// configuration and no resource limits
    /// ([`EngineLimits::unlimited`]).
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the configuration fails validation, its
    /// target selection cannot be resolved for `net`, or the static
    /// verifier finds an error-severity diagnostic
    /// ([`AmcError::AnalysisRejected`]; bypass with
    /// [`AmcConfigBuilder::allow_unverified`](crate::executor::AmcConfigBuilder::allow_unverified)).
    pub fn new(net: Arc<Network>, config: AmcConfig) -> Result<Self, AmcError> {
        Self::with_limits(net, config, EngineLimits::unlimited())
    }

    /// Creates an engine with explicit resource limits — the serving
    /// lifecycle's admission-control and memory-budget knobs (see the
    /// [module docs](self#lifecycle--failure-modes)).
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the configuration or the limits fail
    /// validation, the target selection cannot be resolved for `net`, or
    /// the static verifier rejects the (network, configuration) pair
    /// ([`AmcError::AnalysisRejected`]).
    pub fn with_limits(
        net: Arc<Network>,
        config: AmcConfig,
        limits: EngineLimits,
    ) -> Result<Self, AmcError> {
        config.validate()?;
        limits.validate()?;
        let (target, rf) = config.target.geometry(&net)?;
        config.verify_resolved(&net, target)?;
        let prefix_macs = net.prefix_macs(target);
        let total_macs = net.total_macs();
        Ok(Self {
            net,
            base: config,
            limits,
            target,
            rf,
            prefix_macs,
            total_macs,
            scratches: (0..limits.worker_threads)
                .map(|_| GemmScratch::new())
                .collect(),
            engine_id: NEXT_ENGINE_ID.fetch_add(1, Relaxed),
            next_session: 0,
            tick: 0,
            slots: Vec::new(),
            clock: Arc::new(MonotonicClock::new()),
            injector: None,
            health: HealthState::default(),
        })
    }

    /// Replaces the deadline-watchdog clock — a [`FakeClock`] makes
    /// deadline behaviour fully deterministic in tests.
    pub fn set_tick_clock(&mut self, clock: Arc<dyn TickClock>) {
        self.clock = clock;
    }

    /// Installs a chaos [`FailureInjector`] consulted inside every
    /// contained per-frame job. Injected panics are contained exactly like
    /// real ones (the frame fails typed, the session is quarantined), so
    /// this is the deterministic seam the soak harness drives.
    pub fn set_failure_injector(&mut self, injector: Arc<dyn FailureInjector>) {
        self.injector = Some(injector);
    }

    /// Removes the chaos injector.
    pub fn clear_failure_injector(&mut self) {
        self.injector = None;
    }

    /// Snapshot of the failure-containment layer: panics contained,
    /// quarantines, evictions, deadline pressure, sheds, forced keys, and
    /// recent tick-duration percentiles. See [`EngineHealth`] for field
    /// semantics. Cheap enough to scrape every tick.
    pub fn health(&self) -> EngineHealth {
        let quarantined_sessions = self
            .slots
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|s| s.poisoned.load(Relaxed) && !s.retired.load(Relaxed))
            .count();
        let mut sorted = self.health.recent_us.clone();
        sorted.sort_unstable();
        EngineHealth {
            ticks: self.health.ticks,
            frames_served: self.health.frames_served,
            panics_caught: self.health.panics_caught,
            quarantines: self.health.quarantines,
            quarantined_sessions,
            evicted_sessions: self.health.evicted_sessions,
            deadline_overruns: self.health.deadline_overruns,
            deadline_sheds: self.health.deadline_sheds,
            budget_sheds: self.health.budget_sheds,
            forced_keys: self.health.forced_keys,
            tick_p50_us: HealthState::percentile(&sorted, 50),
            tick_p99_us: HealthState::percentile(&sorted, 99),
        }
    }

    fn check_session(&self, session: &StreamSession) -> Result<(), AmcError> {
        if session.engine_id != self.engine_id {
            return Err(AmcError::EngineMismatch {
                session: session.id,
            });
        }
        Ok(())
    }

    /// The served network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The default session configuration.
    pub fn config(&self) -> AmcConfig {
        self.base
    }

    /// The resource limits this engine enforces.
    pub fn limits(&self) -> EngineLimits {
        self.limits
    }

    /// The resolved target layer index (shared by all sessions).
    pub fn target(&self) -> usize {
        self.target
    }

    /// The receptive-field geometry RFBME matches at.
    pub fn rf_geometry(&self) -> RfGeometry {
        self.rf
    }

    /// MACs of the skipped prefix (key-frame-only work).
    pub fn prefix_macs(&self) -> u64 {
        self.prefix_macs
    }

    /// MACs of a full CNN pass.
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Ticks elapsed (one per [`Engine::process_batch`] call, including
    /// batches of one through [`Engine::process`]).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Currently admitted sessions: alive (not dropped) and not retired.
    pub fn session_count(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|s| !s.retired.load(Relaxed))
            .count()
    }

    /// Sum of every live session's audited footprint, as of each
    /// session's last submission (served or refused — a contained panic
    /// can move a quarantined session's footprint, and the ledger tracks
    /// it).
    pub fn total_session_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Weak::upgrade)
            .map(|s| s.bytes.load(Relaxed))
            .sum()
    }

    /// Opens a new stream session with the engine's default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::EngineAtCapacity`] when
    /// [`EngineLimits::max_sessions`] sessions are already admitted.
    pub fn open_session(&mut self) -> Result<StreamSession, AmcError> {
        self.open_session_with(self.base)
    }

    /// Opens a new stream session with a per-stream configuration —
    /// streams may differ in policy, warp mode, fixed-point datapath, and
    /// sparsity threshold.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the configuration fails validation or is
    /// refused by the static verifier ([`AmcError::AnalysisRejected`]),
    /// [`AmcError::SessionTargetMismatch`] when it resolves to a different
    /// target layer than the engine's (all sessions must share the
    /// engine's batched prefix split point), or
    /// [`AmcError::EngineAtCapacity`] when the session cap is reached.
    pub fn open_session_with(&mut self, config: AmcConfig) -> Result<StreamSession, AmcError> {
        self.slots.retain(|w| w.strong_count() > 0);
        if self.session_count() >= self.limits.max_sessions {
            return Err(AmcError::EngineAtCapacity {
                limit: self.limits.max_sessions,
            });
        }
        let core = SessionCore::new(&self.net, &config)?;
        if core.target() != self.target {
            return Err(AmcError::SessionTargetMismatch {
                engine: self.target,
                session: core.target(),
            });
        }
        let id = self.next_session;
        self.next_session += 1;
        let slot = Arc::new(SessionSlot {
            last_tick: AtomicU64::new(self.tick),
            bytes: AtomicUsize::new(core.memory_footprint()),
            retired: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        });
        self.slots.push(Arc::downgrade(&slot));
        Ok(StreamSession {
            id,
            engine_id: self.engine_id,
            core,
            slot,
        })
    }

    /// Processes one frame of one stream — identical in behaviour (and
    /// bits) to a batch of one.
    ///
    /// See [`Engine::process_batch`] — every admission and execution
    /// refusal surfaces here the same way, as a [`FrameOutcome::Shed`] or
    /// [`FrameOutcome::Rejected`].
    pub fn process(&mut self, session: &mut StreamSession, frame: &GrayImage) -> FrameOutcome {
        match self.process_batch([(session, frame)]).pop() {
            Some(outcome) => outcome,
            None => FrameOutcome::Rejected(AmcError::Internal {
                what: "a batch of one job yielded no outcome",
            }),
        }
    }

    /// Processes one frame from each of several streams, batching the
    /// key-frame prefixes across streams.
    ///
    /// Every frame is classified by its own session's RFBME estimate and
    /// policy (in submission order); the frames decided *key* then share
    /// one `forward_prefix_batched` pass before each
    /// session completes its frame (sparse store refresh + suffix for
    /// keys, warp + suffix for predicted). Results come back in submission
    /// order and are bit-identical to processing each `(session, frame)`
    /// pair serially through [`Engine::process`].
    ///
    /// One call is one *tick*: the unit of the per-tick frame and
    /// key-frame budgets and of the idle-eviction clock. With
    /// [`EngineLimits::worker_threads`] above one, the per-stream phases
    /// of the tick fan out across scoped worker threads (see the
    /// [module docs](self#threading-model--determinism)) without changing
    /// a single output bit.
    ///
    /// Each job succeeds or is refused independently; a refusal never
    /// disturbs the other jobs, and a refused job's session is left
    /// exactly as it was:
    ///
    /// * [`FrameOutcome::Shed`] — backpressure
    ///   ([`AmcError::BudgetExceeded`]): the tick's frame or key-frame
    ///   budget was exhausted before this job, or the tick overran
    ///   [`EngineLimits::tick_deadline_ms`] before this key-frame upgrade
    ///   (`what: "tick deadline"`); resubmit next tick.
    /// * [`FrameOutcome::Rejected`] — the submission is wrong:
    ///   [`AmcError::EngineMismatch`] (session opened by a different
    ///   engine), [`AmcError::SessionEvicted`] (session retired by
    ///   [`Engine::evict_session`]), [`AmcError::SessionPoisoned`]
    ///   (session quarantined by a contained panic; evict to recover),
    ///   [`AmcError::FrameGeometryMismatch`] (frame resolution differs
    ///   from the network's input shape), [`AmcError::WorkerPanicked`]
    ///   (this job's own worker panicked — contained, and the session is
    ///   now quarantined), or [`AmcError::Internal`] (a violated engine
    ///   invariant — never expected; returned instead of panicking so
    ///   serving survives it).
    pub fn process_batch<'a>(
        &mut self,
        jobs: impl IntoIterator<Item = (&'a mut StreamSession, &'a GrayImage)>,
    ) -> Vec<FrameOutcome> {
        enum Plan {
            Key {
                metrics: Option<FrameMetrics>,
                rfbme_ops: u64,
                forced: bool,
                act: Option<Tensor3>,
            },
            Predicted {
                metrics: Option<FrameMetrics>,
                rfbme_ops: u64,
                motion: RfbmeResult,
            },
        }
        let mut jobs: Vec<(&mut StreamSession, &GrayImage)> = jobs.into_iter().collect();
        self.tick += 1;
        let tick = self.tick;
        let limits = self.limits;
        let engine_id = self.engine_id;
        let workers = self.scratches.len();
        // Cloned handles so the containment/watchdog seams borrow nothing
        // from `self` while the phases below borrow `self.scratches`.
        let clock_arc = Arc::clone(&self.clock);
        let clock: &dyn TickClock = clock_arc.as_ref();
        let injector_arc = self.injector.clone();
        let injector: Option<&dyn FailureInjector> = injector_arc.as_deref();
        let tick_start = clock.now_us();
        let deadline_active = limits.tick_deadline_ms != u64::MAX;
        let deadline_us = limits.tick_deadline_ms.saturating_mul(1000);
        // Sticky overrun marker, shared with the prefix fan-out buckets
        // (their checkpoint is the one that observes mid-phase delays).
        let overrun = AtomicBool::new(false);
        let past_deadline = |overrun: &AtomicBool| {
            if !deadline_active {
                return false;
            }
            if clock.now_us().saturating_sub(tick_start) > deadline_us {
                overrun.store(true, Relaxed);
                return true;
            }
            overrun.load(Relaxed)
        };

        // Phase 0: side-effect-free screening, split by where each check
        // sits in the serial precedence order — `hard` refusals (wrong
        // engine, retired session) precede the per-tick frame budget,
        // geometry refusals follow it — so the admission walk below can
        // surface exactly the error a serial walk would have chosen.
        let mut hard: Vec<Option<AmcError>> = Vec::with_capacity(jobs.len());
        let mut geom: Vec<Option<AmcError>> = Vec::with_capacity(jobs.len());
        for (session, frame) in &jobs {
            hard.push(if session.engine_id != engine_id {
                Some(AmcError::EngineMismatch {
                    session: session.id,
                })
            } else if session.slot.retired.load(Relaxed) {
                Some(AmcError::SessionEvicted {
                    session: session.id,
                })
            } else if session.slot.poisoned.load(Relaxed) {
                Some(AmcError::SessionPoisoned {
                    session: session.id,
                })
            } else {
                None
            });
            geom.push(session.core.check_geometry(frame).err());
        }

        // Phase 1 (multi-worker only): speculative per-stream RFBME for
        // screened-in jobs, fanned out stream-per-worker. `estimate_motion`
        // touches only the session's own key state and `RfbmeScratch`
        // (whose contents never influence results), so estimating for a
        // frame the admission walk later sheds leaves no observable trace.
        // Bounded by the frame budget so a submission storm against a
        // tight budget does not do unbounded speculative work; the walk
        // falls back to an inline estimate for anything not speculated.
        // Each estimate is a contained job: a panic here (scratch is the
        // only state it can half-mutate, and scratch never influences
        // results) surfaces in the walk at exactly the point the inline
        // estimate would have run.
        type MotionSlot = Option<Result<Option<RfbmeResult>, AmcError>>;
        let mut motions: Vec<MotionSlot> = (0..jobs.len()).map(|_| None).collect();
        if workers > 1 {
            let mut speculated = 0usize;
            let mut items: Vec<(&mut SessionCore, &GrayImage, u64, &mut MotionSlot)> = Vec::new();
            for (i, ((session, frame), slot)) in jobs.iter_mut().zip(motions.iter_mut()).enumerate()
            {
                if hard[i].is_none() && geom[i].is_none() && speculated < limits.max_frames_per_tick
                {
                    speculated += 1;
                    let sid = session.id;
                    items.push((&mut session.core, frame, sid, slot));
                }
            }
            let mut units = vec![(); workers];
            fan_out(&mut units, items, |(), (core, frame, sid, slot)| {
                *slot = Some(contain::run("estimate", || {
                    contain::chaos(injector, clock, EnginePhase::Estimate, tick, sid);
                    core.estimate_motion(frame)
                }));
            });
        }

        // Phase 2: the serial admission walk, in submission order —
        // budgets, classification, and commits are inherently ordered
        // (earlier jobs consume budget first), so this stays on the
        // calling thread. Shedding happens here, strictly before any
        // session mutation.
        let mut admitted = 0usize;
        let mut admitted_keys = 0usize;
        let mut key_slots: Vec<usize> = Vec::new();
        let mut plans: Vec<Result<(Plan, ExecStats), AmcError>> = Vec::with_capacity(jobs.len());
        for (i, (session, frame)) in jobs.iter_mut().enumerate() {
            let plan = (|| {
                if let Some(e) = hard[i].take() {
                    return Err(e);
                }
                if admitted >= limits.max_frames_per_tick {
                    return Err(AmcError::BudgetExceeded {
                        what: "frames per tick",
                        budget: limits.max_frames_per_tick,
                    });
                }
                if let Some(e) = geom[i].take() {
                    return Err(e);
                }
                // A speculative estimate is consumed (Ok or panic) exactly
                // where the inline estimate would run, so error precedence
                // matches the single-worker walk.
                let motion = match motions[i].take() {
                    Some(speculated) => speculated?,
                    None => {
                        let sid = session.id;
                        let core = &mut session.core;
                        contain::run("estimate", || {
                            contain::chaos(injector, clock, EnginePhase::Estimate, tick, sid);
                            core.estimate_motion(frame)
                        })?
                    }
                };
                let plan = {
                    let sid = session.id;
                    let core = &mut session.core;
                    contain::run("admit", || {
                        contain::chaos(injector, clock, EnginePhase::Admit, tick, sid);
                        core.classify(&motion)
                    })?
                };
                if plan.kind() == FrameKind::Key {
                    // Deadline watchdog: once the tick is past its soft
                    // budget, no *new* key-frame upgrade is admitted —
                    // shed pre-commit, zero trace, like any other budget.
                    if past_deadline(&overrun) {
                        return Err(AmcError::BudgetExceeded {
                            what: "tick deadline",
                            budget: usize::try_from(limits.tick_deadline_ms).unwrap_or(usize::MAX),
                        });
                    }
                    if admitted_keys >= limits.max_key_frames_per_tick {
                        return Err(AmcError::BudgetExceeded {
                            what: "key frames per tick",
                            budget: limits.max_key_frames_per_tick,
                        });
                    }
                }
                // Admitted: from here on the frame is committed. The stats
                // snapshot (taken before the commit) is what turns the
                // session's counters into this frame's delta. The commit
                // is contained too — a panic mid-commit leaves counters
                // half-bumped, which is exactly what quarantine is for.
                let stats_before = session.core.stats();
                contain::run("admit", || session.core.commit_frame(&plan, &motion))?;
                admitted += 1;
                session.slot.last_tick.store(tick, Relaxed);
                match plan.kind() {
                    FrameKind::Key => {
                        admitted_keys += 1;
                        key_slots.push(i);
                        Ok((
                            Plan::Key {
                                metrics: plan.metrics,
                                rfbme_ops: plan.rfbme_ops,
                                forced: plan.forced,
                                act: None,
                            },
                            stats_before,
                        ))
                    }
                    FrameKind::Predicted => {
                        let motion = motion.ok_or(AmcError::Internal {
                            what: "predicted frame requires a motion estimate",
                        })?;
                        Ok((
                            Plan::Predicted {
                                metrics: plan.metrics,
                                rfbme_ops: plan.rfbme_ops,
                                motion,
                            },
                            stats_before,
                        ))
                    }
                }
            })();
            // Quarantine: a contained panic may have left this session's
            // state half-mutated, so the session is poisoned until it is
            // evicted and rehydrated through the forced-key seam.
            if matches!(&plan, Err(AmcError::WorkerPanicked { .. })) {
                session.slot.poisoned.store(true, Relaxed);
            }
            plans.push(plan);
        }

        // Phase 3: prefix passes over the admitted key frames. One worker
        // (or one key frame) runs a single batched pass with the calling
        // thread's scratch — exactly the pre-pool engine. More workers
        // fan the key frames out frame-per-thread (the PR-4 finding: one
        // frame per thread beats splitting one frame's GEMM), each worker
        // running one `forward_prefix_batched` sub-batch with its own
        // scratch; the batched prefix is bit-identical for any partition
        // of the batch, so the split never changes an output bit. The
        // geometry screen guarantees every input shares the network's
        // input shape, as the batched prefix requires.
        // Containment note: the chaos hook runs per frame (so injection
        // stays pure in `(tick, session)`), but a real panic inside the
        // batched pass cannot name a frame, so it costs — and quarantines —
        // every session in its bucket.
        type ActSlot = Option<Result<Tensor3, AmcError>>;
        let mut acts: Vec<ActSlot> = (0..key_slots.len()).map(|_| None).collect();
        if !key_slots.is_empty() {
            let net: &Network = &self.net;
            let target = self.target;
            type PrefixJob<'f> = (
                Vec<(&'f GrayImage, u64, &'f AtomicBool)>,
                Vec<&'f mut ActSlot>,
            );
            let run_bucket = |scratch: &mut GemmScratch, (frames, mut slots): PrefixJob<'_>| {
                // Deadline checkpoint between fan-out buckets: committed
                // key frames always finish (shedding happens at
                // admission), but an overrun observed here is recorded
                // for the health snapshot.
                past_deadline(&overrun);
                let mut clean: Vec<usize> = Vec::new();
                for (k, &(_, sid, poisoned)) in frames.iter().enumerate() {
                    match contain::run("prefix", || {
                        contain::chaos(injector, clock, EnginePhase::Prefix, tick, sid);
                    }) {
                        Ok(()) => clean.push(k),
                        Err(e) => {
                            poisoned.store(true, Relaxed);
                            *slots[k] = Some(Err(e));
                        }
                    }
                }
                if clean.is_empty() {
                    return;
                }
                let inputs: Vec<Tensor3> = clean.iter().map(|&k| frames[k].0.to_tensor()).collect();
                match contain::run("prefix", || {
                    net.forward_prefix_batched(inputs, target, scratch)
                }) {
                    Ok(outs) => {
                        for (&k, out) in clean.iter().zip(outs) {
                            *slots[k] = Some(Ok(out));
                        }
                    }
                    Err(e) => {
                        for &k in &clean {
                            frames[k].2.store(true, Relaxed);
                            *slots[k] = Some(Err(e.clone()));
                        }
                    }
                }
            };
            if workers == 1 || key_slots.len() <= 1 {
                let job: PrefixJob<'_> = (
                    key_slots
                        .iter()
                        .map(|&i| (jobs[i].1, jobs[i].0.id, &jobs[i].0.slot.poisoned))
                        .collect(),
                    acts.iter_mut().collect(),
                );
                run_bucket(&mut self.scratches[0], job);
            } else {
                let buckets_n = workers.min(key_slots.len());
                let mut buckets: Vec<PrefixJob<'_>> =
                    (0..buckets_n).map(|_| (Vec::new(), Vec::new())).collect();
                for ((k, &i), slot) in key_slots.iter().enumerate().zip(acts.iter_mut()) {
                    let (frames, slots) = &mut buckets[k % buckets_n];
                    frames.push((jobs[i].1, jobs[i].0.id, &jobs[i].0.slot.poisoned));
                    slots.push(slot);
                }
                fan_out(&mut self.scratches, buckets, run_bucket);
            }
        }
        for (&i, act) in key_slots.iter().zip(acts) {
            match act {
                Some(Ok(out)) => {
                    if let Ok((Plan::Key { act: slot, .. }, _)) = &mut plans[i] {
                        *slot = Some(out);
                    }
                }
                Some(Err(e)) => plans[i] = Err(e),
                // `None` is the missing-prefix seam: phase 4 reports it as
                // a typed `AmcError::Internal`.
                None => {}
            }
        }

        // Phase 4: per-stream completion (key sparse-encode + suffix, or
        // warp + suffix), fanned out stream-per-worker. Jobs are distinct
        // sessions by construction (`&mut` exclusivity), so this phase is
        // embarrassingly parallel; outcomes land in per-job slots, so the
        // returned order is submission order regardless of scheduling.
        let mut outcomes: Vec<Option<FrameOutcome>> = (0..jobs.len()).map(|_| None).collect();
        let net: &Network = &self.net;
        let max_session_bytes = limits.max_session_bytes;
        let mut items: Vec<(
            &mut StreamSession,
            &GrayImage,
            Plan,
            ExecStats,
            &mut Option<FrameOutcome>,
        )> = Vec::new();
        for (((session, frame), plan), slot) in jobs.iter_mut().zip(plans).zip(outcomes.iter_mut())
        {
            match plan {
                Err(e) => {
                    // Keep the audited footprint honest even for failed
                    // jobs: a contained panic after admission may have
                    // mutated the session's state (that's what quarantine
                    // is for), and the memory ledger must reflect it.
                    session
                        .slot
                        .bytes
                        .store(session.core.memory_footprint(), Relaxed);
                    *slot = Some(FrameOutcome::from_error(e));
                }
                Ok((plan, stats_before)) => items.push((session, frame, plan, stats_before, slot)),
            }
        }
        past_deadline(&overrun);
        fan_out(
            &mut self.scratches,
            items,
            |scratch, (session, frame, plan, stats_before, slot)| {
                let sid = session.id;
                let core = &mut session.core;
                let result = contain::run("complete", || {
                    contain::chaos(injector, clock, EnginePhase::Complete, tick, sid);
                    match plan {
                        Plan::Key {
                            metrics,
                            rfbme_ops,
                            forced,
                            act,
                        } => match act {
                            None => FrameOutcome::Rejected(AmcError::Internal {
                                what: "one prefix activation per key frame",
                            }),
                            Some(act) => {
                                let residual = metrics.as_ref().map(|m| m.block_error_per_pixel);
                                let served = core
                                    .finish_key_frame(net, scratch, frame, act, metrics, rfbme_ops);
                                // Per-session budget: rather than let one
                                // stream grow past its allowance, trim its
                                // state — the stream degrades to
                                // bounded-memory all-key serving instead of
                                // failing.
                                if core.memory_footprint() > max_session_bytes {
                                    core.evict_state();
                                }
                                let stats = core.stats().delta_since(&stats_before);
                                match (forced, residual) {
                                    (true, Some(residual)) => FrameOutcome::ForcedKey {
                                        residual,
                                        frame: served,
                                        stats,
                                    },
                                    _ => FrameOutcome::Key {
                                        frame: served,
                                        stats,
                                    },
                                }
                            }
                        },
                        Plan::Predicted {
                            metrics,
                            rfbme_ops,
                            motion,
                        } => {
                            match core.finish_predicted(net, scratch, &motion, metrics, rfbme_ops) {
                                Ok(served) => {
                                    let stats = core.stats().delta_since(&stats_before);
                                    FrameOutcome::Predicted {
                                        frame: served,
                                        stats,
                                    }
                                }
                                Err(e) => FrameOutcome::from_error(e),
                            }
                        }
                    }
                });
                let outcome = match result {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        // A panic mid-completion may have left key state
                        // half-written: quarantine the session.
                        session.slot.poisoned.store(true, Relaxed);
                        FrameOutcome::Rejected(e)
                    }
                };
                // Unconditional: a contained panic or typed refusal may
                // still have moved the footprint (e.g. the admission
                // commit before a completion panic), and the memory
                // ledger must track the core, not just happy paths.
                session
                    .slot
                    .bytes
                    .store(session.core.memory_footprint(), Relaxed);
                *slot = Some(outcome);
            },
        );
        let results: Vec<FrameOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(FrameOutcome::Rejected(AmcError::Internal {
                    what: "a job produced no outcome",
                }))
            })
            .collect();

        // Tick epilogue: the health ledger. Serial, on the calling thread,
        // after every worker has finished — no outcome can race with it.
        let elapsed = clock.now_us().saturating_sub(tick_start);
        self.health.ticks += 1;
        self.health.record_tick(elapsed);
        if deadline_active && (elapsed > deadline_us || overrun.load(Relaxed)) {
            self.health.deadline_overruns += 1;
        }
        for outcome in &results {
            match outcome {
                FrameOutcome::Shed(AmcError::BudgetExceeded {
                    what: "tick deadline",
                    ..
                }) => self.health.deadline_sheds += 1,
                FrameOutcome::Shed(_) => self.health.budget_sheds += 1,
                FrameOutcome::Rejected(AmcError::WorkerPanicked { .. }) => {
                    self.health.panics_caught += 1;
                    self.health.quarantines += 1;
                }
                FrameOutcome::Rejected(_) => {}
                FrameOutcome::ForcedKey { .. } => {
                    self.health.forced_keys += 1;
                    self.health.frames_served += 1;
                }
                FrameOutcome::Key { .. } | FrameOutcome::Predicted { .. } => {
                    self.health.frames_served += 1;
                }
            }
        }
        results
    }

    /// Housekeeping over the offered sessions: evicts the key state of
    /// sessions idle for at least [`EngineLimits::idle_evict_ticks`]
    /// ticks, then least-recently-used sessions until the engine-wide
    /// audited footprint fits [`EngineLimits::max_total_bytes`]. Returns
    /// the number of evictions performed.
    ///
    /// Eviction is transparent (see
    /// [`StreamSession::evict_state`]): an evicted stream's next frame
    /// rehydrates as a key frame. The engine can only evict sessions it is
    /// *offered* — sessions held elsewhere still count toward the total
    /// (their slots are live), so a caller wanting the budget enforced
    /// must offer every session it holds.
    pub fn maintain<'a>(
        &mut self,
        sessions: impl IntoIterator<Item = &'a mut StreamSession>,
    ) -> usize {
        self.slots.retain(|w| w.strong_count() > 0);
        let mut own: Vec<&mut StreamSession> = sessions
            .into_iter()
            .filter(|s| s.engine_id == self.engine_id)
            .collect();
        let tick = self.tick;
        let mut evicted = 0usize;
        for session in own.iter_mut() {
            if session.core.has_state()
                && tick.saturating_sub(session.slot.last_tick.load(Relaxed))
                    >= self.limits.idle_evict_ticks
                && session.evict_state()
            {
                evicted += 1;
            }
        }
        while self.total_session_bytes() > self.limits.max_total_bytes {
            let victim = own
                .iter_mut()
                .filter(|s| s.core.has_state())
                .min_by_key(|s| (s.slot.last_tick.load(Relaxed), s.id));
            let Some(victim) = victim else {
                // Nothing offered is evictable; the budget cannot be met
                // from here.
                break;
            };
            if victim.evict_state() {
                evicted += 1;
            }
        }
        self.health.evicted_sessions += evicted as u64;
        evicted
    }

    /// Hard-evicts a session: drops its state *and revokes its
    /// admission*. The slot is freed immediately (another session may be
    /// opened in its place) and every later submission of this session
    /// returns [`AmcError::SessionEvicted`]. Use
    /// [`StreamSession::evict_state`] (or [`Engine::maintain`]) for the
    /// soft, transparent variant.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::EngineMismatch`] when `session` was opened by a
    /// different engine.
    pub fn evict_session(&mut self, session: &mut StreamSession) -> Result<(), AmcError> {
        self.check_session(session)?;
        session.slot.retired.store(true, Relaxed);
        session.evict_state();
        self.health.evicted_sessions += 1;
        Ok(())
    }
}

/// Per-stream serving state: key-frame buffers, policy, statistics. Opened
/// by [`Engine::open_session`]; submit frames through
/// [`Engine::process`] / [`Engine::process_batch`].
#[derive(Debug)]
pub struct StreamSession {
    id: u64,
    /// Identity of the engine that opened this session; checked on every
    /// submission (see [`Engine::process`]).
    engine_id: u64,
    core: SessionCore,
    /// Shared bookkeeping with the engine (recency, footprint, retired
    /// flag); the engine holds only a [`Weak`], so dropping the session
    /// frees its admission slot.
    slot: Arc<SessionSlot>,
}

impl StreamSession {
    /// The engine-assigned session id (unique per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Aggregate statistics over this stream's processed frames.
    pub fn stats(&self) -> ExecStats {
        self.core.stats()
    }

    /// The resolved target layer index.
    pub fn target(&self) -> usize {
        self.core.target()
    }

    /// Drops stored state, forcing this stream's next frame to be a key
    /// frame (e.g. on a known scene cut or after a seek). Unlike
    /// [`StreamSession::evict_state`] this keeps the RFBME scratch and is
    /// not counted as an eviction.
    pub fn reset(&mut self) {
        self.core.reset();
        self.slot.bytes.store(self.core.memory_footprint(), Relaxed);
    }

    /// Evicts this session's key state and RFBME scratch, returning it to
    /// its just-opened footprint; counted in [`ExecStats::evictions`] when
    /// key state was present (the returned flag). The next frame
    /// *rehydrates* as a key frame, bit-identical to a fresh session from
    /// that frame on.
    ///
    /// Eviction is also the quarantine exit: dropping the suspect state is
    /// exactly what makes a poisoned session trustworthy again, so the
    /// poisoned flag is cleared here (and nowhere else).
    pub fn evict_state(&mut self) -> bool {
        let had_state = self.core.evict_state();
        self.slot.bytes.store(self.core.memory_footprint(), Relaxed);
        self.slot.poisoned.store(false, Relaxed);
        had_state
    }

    /// Whether this session is quarantined after a contained worker panic
    /// (every submission returns [`AmcError::SessionPoisoned`] until
    /// [`StreamSession::evict_state`] rehydrates it).
    pub fn is_quarantined(&self) -> bool {
        self.slot.poisoned.load(Relaxed)
    }

    /// Audited heap footprint: the session struct plus the stored key
    /// image, compressed/sparse/decoded activations, and RFBME scratch,
    /// by allocated capacity. This is the figure the engine's
    /// [`EngineLimits::max_session_bytes`] / `max_total_bytes` budgets
    /// are enforced against.
    pub fn memory_footprint(&self) -> usize {
        self.core.memory_footprint()
    }

    /// Whether [`Engine::evict_session`] has revoked this session's
    /// admission (submissions return [`AmcError::SessionEvicted`]).
    pub fn is_evicted(&self) -> bool {
        self.slot.retired.load(Relaxed)
    }

    /// The compressed key activation currently buffered, if any.
    pub fn key_activation(&self) -> Option<&RleActivation> {
        self.core.key_activation()
    }

    /// The stored key-frame pixel buffer, if any.
    pub fn key_image(&self) -> Option<&GrayImage> {
        self.core.key_image()
    }
}

// Sessions hop threads in serving deployments (one task per camera);
// enforce the property where the type is defined.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StreamSession>();
    assert_send::<Engine>();
};

/// The serving [`Engine`] speaking the
/// [`FrameExecutor`](crate::pipeline::FrameExecutor) protocol: one unlimited
/// engine driving one stream.
///
/// This is the adapter the experiment protocols
/// (`eva2_experiments::run_policy_with`) use so every executor flavour —
/// serial, pipelined, worker-pool — funnels through the same serving entry
/// point. The engine is opened with [`EngineLimits::unlimited`] (plus the
/// forced `worker_threads` count), so every frame is admitted and
/// [`FrameOutcome::into_result`] cannot refuse; outputs are bit-identical to
/// the serial [`AmcExecutor`](crate::executor::AmcExecutor) for any worker
/// count.
pub struct EngineExecutor {
    engine: Engine,
    session: StreamSession,
}

impl EngineExecutor {
    /// Builds an unlimited single-stream engine over `net` with a forced
    /// `worker_threads` count.
    pub fn new(
        net: Arc<Network>,
        config: AmcConfig,
        worker_threads: usize,
    ) -> Result<Self, AmcError> {
        let limits = EngineLimits::builder()
            .worker_threads(worker_threads)
            .build()?;
        let mut engine = Engine::with_limits(net, config, limits)?;
        let session = engine.open_session()?;
        Ok(Self { engine, session })
    }

    /// The engine driving this executor.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl crate::pipeline::FrameExecutor for EngineExecutor {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn push_frame(&mut self, frame: &GrayImage) -> Result<Option<AmcFrameResult>, AmcError> {
        // An unlimited engine sheds nothing, so any refusal here (a bad
        // frame, a contained panic) surfaces as its typed error for the
        // caller to stop on — never as a panic that could kill a process
        // serving other streams.
        Ok(Some(
            self.engine
                .process(&mut self.session, frame)
                .into_result()?,
        ))
    }

    fn finish(&mut self) -> Option<AmcFrameResult> {
        None
    }

    fn stats(&self) -> ExecStats {
        self.session.stats()
    }

    fn reset(&mut self) {
        self.session.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AmcExecutor;
    use crate::policy::PolicyConfig;
    use crate::target::TargetSelection;
    use eva2_cnn::zoo;

    fn frame(shift: usize) -> GrayImage {
        GrayImage::from_fn(48, 48, |y, x| {
            let xs = (x + shift) as f32;
            (122.0 + 46.0 * ((y as f32 * 0.31).sin() + (xs * 0.21).cos())) as u8
        })
    }

    #[test]
    fn sessions_are_independent() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        assert_ne!(a.id(), b.id());
        let f = frame(0);
        assert!(engine.process(&mut a, &f).unwrap().is_key);
        // Session b has no key state yet; its first frame is still key.
        assert!(engine.process(&mut b, &f).unwrap().is_key);
        assert!(!engine.process(&mut a, &f).unwrap().is_key);
        assert_eq!(a.stats().frames, 2);
        assert_eq!(b.stats().frames, 1);
        b.reset();
        assert!(engine.process(&mut b, &f).unwrap().is_key);
    }

    #[test]
    fn batched_keys_match_serial_executor_bits() {
        let z = zoo::tiny_fasterm(3);
        let net = Arc::new(zoo::tiny_fasterm(3).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut sessions: Vec<StreamSession> =
            (0..3).map(|_| engine.open_session().unwrap()).collect();
        let frames: Vec<GrayImage> = (0..3).map(|i| frame(i * 5)).collect();
        // All three first frames are key frames → batched prefix.
        let jobs = sessions.iter_mut().zip(frames.iter());
        let results = engine.process_batch(jobs);
        for (f, r) in frames.iter().zip(&results) {
            let r = r.frame().unwrap();
            assert!(r.is_key);
            let mut serial = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
            let want = serial.process(f);
            assert_eq!(r.output.as_slice(), want.output.as_slice());
            assert_eq!(r.compression, want.compression);
            assert_eq!(r.macs_executed, want.macs_executed);
        }
    }

    #[test]
    fn mixed_batch_handles_keys_and_predicted() {
        let net = Arc::new(zoo::tiny_fasterm(1).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        let f0 = frame(0);
        engine.process(&mut a, &f0).unwrap(); // a has key state
        let results = engine.process_batch([(&mut a, &f0), (&mut b, &f0)]);
        assert!(
            !results[0].frame().unwrap().is_key,
            "a predicts its unchanged scene"
        );
        assert!(results[1].frame().unwrap().is_key, "b's first frame is key");
        assert_eq!(a.stats().key_frames, 1);
        assert_eq!(b.stats().key_frames, 1);
    }

    #[test]
    fn sessions_surface_rfbme_pruning_counters() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut session = engine.open_session().unwrap();
        let f0 = frame(0);
        let f1 = frame(1);
        engine.process(&mut session, &f0).unwrap();
        assert_eq!(
            session.stats().rfbme_candidates,
            0,
            "no estimate ran on the first frame"
        );
        engine.process(&mut session, &f1).unwrap();
        let s = session.stats();
        assert!(s.rfbme_candidates > 0, "second frame ran the search");
        assert!(
            s.rfbme_level0_rejects + s.rfbme_level1_rejects > 0,
            "the two-level search prunes on a drifting scene: {s:?}"
        );
        let refined = s.rfbme_candidates - s.rfbme_level0_rejects - s.rfbme_level1_rejects;
        assert!(
            refined < s.rfbme_candidates,
            "refined {refined} of {} candidates",
            s.rfbme_candidates
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        assert!(engine.process_batch([]).is_empty());
    }

    #[test]
    fn per_session_configs_may_differ_but_target_must_match() {
        let net = Arc::new(zoo::tiny_faster16(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let memo = AmcConfig {
            warp: WarpMode::Memoize,
            policy: PolicyConfig::StaticRate { period: 2 },
            ..Default::default()
        };
        assert!(engine.open_session_with(memo).is_ok());
        let early = AmcConfig {
            target: TargetSelection::Early,
            ..Default::default()
        };
        match engine.open_session_with(early) {
            Err(AmcError::SessionTargetMismatch {
                engine: e,
                session: s,
            }) => {
                assert_ne!(e, s);
            }
            other => panic!("expected SessionTargetMismatch, got {other:?}"),
        }
    }

    #[test]
    fn cross_engine_session_use_is_a_typed_error() {
        // Two engines over different weights can resolve the same target
        // index; silently mixing their sessions would run one engine's key
        // state against the other's network.
        let mut a =
            Engine::new(Arc::new(zoo::tiny_fasterm(0).network), AmcConfig::default()).unwrap();
        let mut b =
            Engine::new(Arc::new(zoo::tiny_fasterm(1).network), AmcConfig::default()).unwrap();
        let mut session = a.open_session().unwrap();
        let f = frame(0);
        match b.process(&mut session, &f) {
            FrameOutcome::Rejected(AmcError::EngineMismatch { session: id }) => {
                assert_eq!(id, session.id())
            }
            other => panic!("expected EngineMismatch, got {other:?}"),
        }
        assert_eq!(
            session.stats().frames,
            0,
            "a rejected submission must not touch the session"
        );
        // The session still works with its own engine.
        assert!(a.process(&mut session, &f).unwrap().is_key);
        // evict_session refuses foreign sessions too.
        assert!(matches!(
            b.evict_session(&mut session),
            Err(AmcError::EngineMismatch { .. })
        ));
    }

    #[test]
    fn engine_rejects_invalid_config() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let bad = AmcConfig {
            target: TargetSelection::Index(99),
            ..Default::default()
        };
        assert!(matches!(
            Engine::new(net, bad),
            Err(AmcError::TargetOutsidePrefix { index: 99, .. })
        ));
    }

    #[test]
    fn engine_rejects_invalid_limits() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let bad = EngineLimits {
            max_sessions: 0,
            ..EngineLimits::unlimited()
        };
        assert!(matches!(
            Engine::with_limits(net, AmcConfig::default(), bad),
            Err(AmcError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn session_cap_refuses_then_frees_on_drop() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let limits = EngineLimits {
            max_sessions: 2,
            ..EngineLimits::unlimited()
        };
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let a = engine.open_session().unwrap();
        let _b = engine.open_session().unwrap();
        match engine.open_session() {
            Err(AmcError::EngineAtCapacity { limit: 2 }) => {}
            other => panic!("expected EngineAtCapacity, got {other:?}"),
        }
        assert_eq!(engine.session_count(), 2);
        drop(a);
        // The dropped session's slot is reclaimed with no unregister call.
        let _c = engine.open_session().unwrap();
        assert_eq!(engine.session_count(), 2);
    }

    #[test]
    fn frame_budget_sheds_without_corrupting_sessions() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let limits = EngineLimits {
            max_frames_per_tick: 1,
            ..EngineLimits::unlimited()
        };
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        let f = frame(0);
        let results = engine.process_batch([(&mut a, &f), (&mut b, &f)]);
        assert!(results[0].frame().unwrap().is_key);
        match &results[1] {
            FrameOutcome::Shed(AmcError::BudgetExceeded {
                what: "frames per tick",
                budget: 1,
            }) => {}
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The shed frame left b untouched; next tick it runs identically.
        assert_eq!(b.stats().frames, 0);
        assert!(engine.process(&mut b, &f).unwrap().is_key);
        assert_eq!(b.stats().frames, 1);
    }

    #[test]
    fn key_budget_sheds_keys_but_admits_predicted() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let limits = EngineLimits {
            max_key_frames_per_tick: 1,
            ..EngineLimits::unlimited()
        };
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        let mut c = engine.open_session().unwrap();
        let f = frame(0);
        engine.process(&mut a, &f).unwrap(); // a has key state → predicts
                                             // b and c both need key frames; only one fits the tick.
        let results = engine.process_batch([(&mut b, &f), (&mut a, &f), (&mut c, &f)]);
        assert!(results[0].frame().unwrap().is_key, "b takes the key slot");
        assert!(
            !results[1].frame().unwrap().is_key,
            "a's predicted frame is not shed by the key budget"
        );
        match &results[2] {
            FrameOutcome::Shed(AmcError::BudgetExceeded {
                what: "key frames per tick",
                budget: 1,
            }) => {}
            other => panic!("expected key-budget shedding, got {other:?}"),
        }
        assert_eq!(c.stats().frames, 0);
        assert!(c.key_image().is_none(), "shed key frame stored no state");
        // Next tick c's key frame is admitted.
        assert!(engine.process(&mut c, &f).unwrap().is_key);
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut session = engine.open_session().unwrap();
        engine.process(&mut session, &frame(0)).unwrap();
        let small = GrayImage::from_fn(32, 32, |y, x| ((y * 5 + x) % 251) as u8);
        match engine.process(&mut session, &small) {
            FrameOutcome::Rejected(AmcError::FrameGeometryMismatch {
                expected_height: 48,
                expected_width: 48,
                got_height: 32,
                got_width: 32,
            }) => {}
            other => panic!("expected FrameGeometryMismatch, got {other:?}"),
        }
        assert_eq!(session.stats().frames, 1, "rejected frame not counted");
        // The geometry is the *network's*, not the stored key frame's:
        // even after a reset the off-shape frame stays rejected, and the
        // stream resumes normally at the right resolution.
        session.reset();
        assert!(engine.process(&mut session, &small).error().is_some());
        assert!(engine.process(&mut session, &frame(1)).unwrap().is_key);
    }

    #[test]
    fn off_geometry_job_is_shed_without_disturbing_the_batch() {
        let net = Arc::new(zoo::tiny_fasterm(2).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        let good = frame(0);
        let small = GrayImage::from_fn(40, 40, |y, x| ((y * 3 + x * 7) % 200) as u8);
        // A wrong-resolution *first* frame is caught before any CNN work
        // (the check is against the network, not yet-nonexistent state),
        // and the healthy job in the same batch is untouched.
        let results = engine.process_batch([(&mut a, &good), (&mut b, &small)]);
        assert!(results[0].frame().unwrap().is_key);
        assert!(matches!(
            results[1],
            FrameOutcome::Rejected(AmcError::FrameGeometryMismatch {
                expected_height: 48,
                expected_width: 48,
                got_height: 40,
                got_width: 40,
            })
        ));
        assert_eq!(a.stats().frames, 1);
        assert_eq!(b.stats().frames, 0, "shed job left no trace");
        // The shed stream is still serviceable.
        assert!(engine.process(&mut b, &good).unwrap().is_key);
    }

    #[test]
    fn evict_session_revokes_admission() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let limits = EngineLimits {
            max_sessions: 1,
            ..EngineLimits::unlimited()
        };
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let mut a = engine.open_session().unwrap();
        let f = frame(0);
        engine.process(&mut a, &f).unwrap();
        engine.evict_session(&mut a).unwrap();
        assert!(a.is_evicted());
        assert!(a.key_image().is_none());
        match engine.process(&mut a, &f) {
            FrameOutcome::Rejected(AmcError::SessionEvicted { session }) => {
                assert_eq!(session, a.id())
            }
            other => panic!("expected SessionEvicted, got {other:?}"),
        }
        // The retired session no longer counts toward the cap.
        assert_eq!(engine.session_count(), 0);
        let _b = engine.open_session().unwrap();
    }

    #[test]
    fn soft_eviction_rehydrates_bit_identically() {
        let net = Arc::new(zoo::tiny_fasterm(4).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut evicted = engine.open_session().unwrap();
        for i in 0..3 {
            engine.process(&mut evicted, &frame(i)).unwrap();
        }
        assert!(evicted.evict_state());
        assert_eq!(evicted.stats().evictions, 1);
        let stats_before = evicted.stats();
        // A fresh session replaying the post-eviction frames must match
        // the rehydrated session bit for bit.
        let mut fresh = engine.open_session().unwrap();
        for i in 3..6 {
            let r_old = engine.process(&mut evicted, &frame(i)).unwrap();
            let r_new = engine.process(&mut fresh, &frame(i)).unwrap();
            assert_eq!(r_old.is_key, r_new.is_key);
            assert_eq!(r_old.output.as_slice(), r_new.output.as_slice());
            assert_eq!(r_old.macs_executed, r_new.macs_executed);
            if i == 3 {
                assert!(r_old.is_key, "rehydration forces a key frame");
            }
        }
        // Stats advanced by exactly the fresh session's totals.
        let delta_frames = evicted.stats().frames - stats_before.frames;
        let delta_macs = evicted.stats().macs - stats_before.macs;
        assert_eq!(delta_frames, fresh.stats().frames);
        assert_eq!(delta_macs, fresh.stats().macs);
    }

    #[test]
    fn session_budget_degrades_to_bounded_memory_key_serving() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        // Far below any real key-state footprint: every key frame is
        // immediately trimmed.
        let limits = EngineLimits {
            max_session_bytes: std::mem::size_of::<SessionCore>() + 1,
            ..EngineLimits::unlimited()
        };
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let mut session = engine.open_session().unwrap();
        let f = frame(0);
        for _ in 0..3 {
            let r = engine.process(&mut session, &f).unwrap();
            assert!(r.is_key, "with no retained state every frame re-keys");
            assert!(
                session.memory_footprint() <= engine.limits().max_session_bytes,
                "footprint {} exceeds the budget the engine promised to hold",
                session.memory_footprint()
            );
        }
        assert_eq!(session.stats().evictions, 3);
    }

    #[test]
    fn maintain_evicts_idle_then_lru() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let limits = EngineLimits {
            idle_evict_ticks: 2,
            ..EngineLimits::unlimited()
        };
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let mut idle = engine.open_session().unwrap();
        let mut busy = engine.open_session().unwrap();
        let f = frame(0);
        engine.process(&mut idle, &f).unwrap();
        for i in 0..3 {
            engine.process(&mut busy, &frame(i)).unwrap();
        }
        // idle last ran at tick 1; current tick is 4 → idle for 3 ≥ 2.
        assert_eq!(engine.maintain([&mut idle, &mut busy]), 1);
        assert!(idle.key_image().is_none(), "idle session evicted");
        assert!(busy.key_image().is_some(), "busy session retained");
        // Engine-wide budget: force LRU eviction of the remaining state.
        let mut tight = Engine::with_limits(
            Arc::new(zoo::tiny_fasterm(0).network),
            AmcConfig::default(),
            EngineLimits {
                max_total_bytes: 1,
                ..EngineLimits::unlimited()
            },
        )
        .unwrap();
        let mut s = tight.open_session().unwrap();
        tight.process(&mut s, &f).unwrap();
        assert!(tight.total_session_bytes() > 1);
        assert_eq!(tight.maintain([&mut s]), 1);
        assert!(s.key_image().is_none());
    }

    #[test]
    fn residual_confidence_bound_forces_key_frames() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        // A policy that never keys on error, bounded by the confidence
        // guard alone.
        let config = AmcConfig {
            policy: PolicyConfig::BlockError {
                threshold: f32::INFINITY,
                max_gap: 1000,
            },
            max_residual_error: 0.5,
            ..Default::default()
        };
        let mut engine = Engine::new(net, config).unwrap();
        let mut session = engine.open_session().unwrap();
        engine.process(&mut session, &frame(0)).unwrap();
        // Content RFBME cannot explain: high residual error everywhere.
        let noise = GrayImage::from_fn(48, 48, |y, x| ((y * 37 + x * 101) % 255) as u8);
        match engine.process(&mut session, &noise) {
            FrameOutcome::ForcedKey {
                residual,
                frame,
                stats,
            } => {
                assert!(frame.is_key, "a forced key frame is a key frame");
                assert!(
                    residual > 0.5,
                    "the outcome carries the residual that tripped the bound, got {residual}"
                );
                assert_eq!(stats.forced_keys, 1, "this frame's delta records the force");
                assert_eq!(stats.key_frames, 1);
            }
            other => panic!("unexplained motion must degrade to a forced key, got {other:?}"),
        }
        assert_eq!(session.stats().forced_keys, 1);
        // The same scene under an unlimited bound would have predicted.
        let mut loose = Engine::new(
            Arc::new(zoo::tiny_fasterm(0).network),
            AmcConfig {
                policy: PolicyConfig::BlockError {
                    threshold: f32::INFINITY,
                    max_gap: 1000,
                },
                ..Default::default()
            },
        )
        .unwrap();
        let mut ls = loose.open_session().unwrap();
        loose.process(&mut ls, &frame(0)).unwrap();
        assert!(!loose.process(&mut ls, &noise).unwrap().is_key);
        assert_eq!(ls.stats().forced_keys, 0);
    }

    #[test]
    fn memory_footprint_audits_all_parts() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut session = engine.open_session().unwrap();
        let empty = session.memory_footprint();
        assert!(empty >= std::mem::size_of::<SessionCore>());
        engine.process(&mut session, &frame(0)).unwrap();
        engine.process(&mut session, &frame(1)).unwrap();
        // The audit is exactly struct + key-state buffers + scratch.
        let core = &session.core;
        let want = std::mem::size_of::<SessionCore>()
            + core.rfbme_scratch.heap_bytes()
            + core.state.as_ref().map_or(0, KeyState::heap_bytes);
        assert_eq!(session.memory_footprint(), want);
        assert!(
            session.memory_footprint() > empty,
            "key state and scratch must be audited"
        );
        assert_eq!(engine.total_session_bytes(), session.memory_footprint());
        // Eviction returns the session to (at most) its opening footprint.
        session.evict_state();
        assert!(session.memory_footprint() <= empty);
    }

    #[test]
    fn limits_builder_validates_like_amc_config() {
        let limits = EngineLimits::builder()
            .max_sessions(8)
            .max_frames_per_tick(4)
            .max_key_frames_per_tick(2)
            .worker_threads(3)
            .build()
            .unwrap();
        assert_eq!(limits.max_sessions, 8);
        assert_eq!(limits.worker_threads, 3);
        assert_eq!(
            limits.max_total_bytes,
            usize::MAX,
            "unset knobs stay unlimited"
        );
        for bad in [
            EngineLimits::builder().worker_threads(0).build(),
            EngineLimits::builder().max_sessions(0).build(),
            EngineLimits::builder().idle_evict_ticks(0).build(),
        ] {
            assert!(matches!(bad, Err(AmcError::InvalidConfig { .. })));
        }
    }

    #[test]
    fn stats_deltas_partition_the_session_totals() {
        let net = Arc::new(zoo::tiny_fasterm(2).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut session = engine.open_session().unwrap();
        let mut summed = ExecStats::default();
        for i in 0..5 {
            let delta = engine
                .process(&mut session, &frame(i))
                .stats_delta()
                .expect("served");
            assert_eq!(delta.frames, 1, "each outcome is exactly one frame's delta");
            summed.frames += delta.frames;
            summed.key_frames += delta.key_frames;
            summed.macs += delta.macs;
            summed.rfbme_ops += delta.rfbme_ops;
        }
        let totals = session.stats();
        assert_eq!(summed.frames, totals.frames);
        assert_eq!(summed.key_frames, totals.key_frames);
        assert_eq!(summed.macs, totals.macs);
        assert_eq!(summed.rfbme_ops, totals.rfbme_ops);
    }

    #[test]
    fn multi_worker_batches_match_single_worker_bits() {
        // Forced worker counts (this container is single-CPU): the fanned
        // out engine must serve the same bits as the inline engine for a
        // batch mixing key and predicted frames.
        let mk = |workers: usize| {
            let net = Arc::new(zoo::tiny_fasterm(6).network);
            let limits = EngineLimits::builder()
                .worker_threads(workers)
                .build()
                .unwrap();
            Engine::with_limits(net, AmcConfig::default(), limits).unwrap()
        };
        let mut one = mk(1);
        let mut four = mk(4);
        let mut s1: Vec<StreamSession> = (0..5).map(|_| one.open_session().unwrap()).collect();
        let mut s4: Vec<StreamSession> = (0..5).map(|_| four.open_session().unwrap()).collect();
        for t in 0..6 {
            // Stagger content so streams disagree about key vs predicted
            // (stream s cuts hard at t == s + 1 via a shifted pattern).
            let frames: Vec<GrayImage> = (0..5)
                .map(|s| frame(t + if t == s + 1 { 40 } else { s }))
                .collect();
            let r1 = one.process_batch(s1.iter_mut().zip(frames.iter()));
            let r4 = four.process_batch(s4.iter_mut().zip(frames.iter()));
            assert_eq!(r1.len(), r4.len());
            for (a, b) in r1.iter().zip(&r4) {
                assert_eq!(a.is_key(), b.is_key());
                let (fa, fb) = (a.frame().unwrap(), b.frame().unwrap());
                assert_eq!(fa.output.as_slice(), fb.output.as_slice());
                assert_eq!(fa.macs_executed, fb.macs_executed);
                assert_eq!(fa.rfbme_ops, fb.rfbme_ops);
                assert_eq!(a.stats_delta(), b.stats_delta());
            }
        }
        for (a, b) in s1.iter().zip(&s4) {
            assert_eq!(a.stats(), b.stats());
            assert_eq!(a.memory_footprint(), b.memory_footprint());
        }
    }

    #[test]
    fn fan_out_partitions_all_items_round_robin() {
        // Every item is visited exactly once and lands in its own slot,
        // for worker counts below, at, and above the item count.
        for workers in [1usize, 2, 3, 8] {
            let mut states: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
            let mut out = [0usize; 7];
            let items: Vec<(usize, &mut usize)> = out.iter_mut().enumerate().collect();
            fan_out(&mut states, items, |seen, (i, slot)| {
                seen.push(i);
                *slot = i + 1;
            });
            assert_eq!(out, [1, 2, 3, 4, 5, 6, 7]);
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..7).collect::<Vec<_>>());
        }
    }

    /// Silences the default panic hook for injected chaos panics (their
    /// payloads start with `"chaos:"` by contract) so contained-panic tests
    /// don't spray backtrace noise; real panics still print.
    fn quiet_chaos_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !msg.starts_with("chaos:") {
                    prev(info);
                }
            }));
        });
    }

    /// Test injector: panic every time `session` reaches `phase`.
    struct PanicOn {
        phase: EnginePhase,
        session: u64,
    }

    impl FailureInjector for PanicOn {
        fn action(&self, phase: EnginePhase, _tick: u64, session: u64) -> FailureAction {
            if phase == self.phase && session == self.session {
                FailureAction::Panic
            } else {
                FailureAction::None
            }
        }
    }

    fn engine_with_workers(seed: u64, workers: usize) -> Engine {
        let net = Arc::new(zoo::tiny_fasterm(seed).network);
        let limits = EngineLimits::builder()
            .worker_threads(workers)
            .build()
            .unwrap();
        Engine::with_limits(net, AmcConfig::default(), limits).unwrap()
    }

    fn assert_same_bits(a: &FrameOutcome, b: &FrameOutcome) {
        let (fa, fb) = (a.frame().unwrap(), b.frame().unwrap());
        assert_eq!(fa.is_key, fb.is_key);
        assert_eq!(fa.output.as_slice(), fb.output.as_slice());
        assert_eq!(fa.macs_executed, fb.macs_executed);
        assert_eq!(fa.rfbme_ops, fb.rfbme_ops);
    }

    #[test]
    fn contained_panic_quarantines_only_the_owner() {
        quiet_chaos_panics();
        for workers in [1usize, 3] {
            let mut engine = engine_with_workers(2, workers);
            let mut oracle = engine_with_workers(2, workers);
            let mut a = engine.open_session().unwrap();
            let mut b = engine.open_session().unwrap();
            let mut b_oracle = oracle.open_session().unwrap();
            engine.process(&mut a, &frame(0)).unwrap();
            engine.set_failure_injector(Arc::new(PanicOn {
                phase: EnginePhase::Complete,
                session: a.id(),
            }));
            for t in 1..4 {
                let f = frame(t);
                let results = engine.process_batch([(&mut a, &f), (&mut b, &f)]);
                match (t, &results[0]) {
                    // The panic costs exactly a's frame, once...
                    (1, FrameOutcome::Rejected(AmcError::WorkerPanicked { phase, .. })) => {
                        assert_eq!(*phase, "complete");
                    }
                    // ...and afterwards a is refused at screening, even
                    // though the injector still targets it.
                    (_, FrameOutcome::Rejected(AmcError::SessionPoisoned { session })) => {
                        assert_eq!(*session, a.id());
                    }
                    (t, other) => panic!("tick {t}: expected containment, got {other:?}"),
                }
                assert!(a.is_quarantined());
                // b serves bit-identically to an engine a never touched.
                let want = oracle.process(&mut b_oracle, &f);
                assert_same_bits(&results[1], &want);
            }
            assert_eq!(b.stats(), b_oracle.stats());
            let health = engine.health();
            assert_eq!(health.panics_caught, 1);
            assert_eq!(health.quarantines, 1);
            assert_eq!(health.quarantined_sessions, 1);
            // Recovery: evicting the suspect state ends the quarantine and
            // rehydrates through the forced-key seam, bit-identical to a
            // fresh session.
            engine.clear_failure_injector();
            a.evict_state();
            assert!(!a.is_quarantined());
            assert_eq!(engine.health().quarantined_sessions, 0);
            let mut fresh = engine.open_session().unwrap();
            for t in 4..7 {
                let f = frame(t);
                let got = engine.process(&mut a, &f);
                let want = engine.process(&mut fresh, &f);
                assert_same_bits(&got, &want);
            }
        }
    }

    #[test]
    fn estimate_phase_panic_is_contained_per_frame() {
        quiet_chaos_panics();
        for workers in [1usize, 3] {
            let mut engine = engine_with_workers(1, workers);
            let mut s = engine.open_session().unwrap();
            engine.process(&mut s, &frame(0)).unwrap();
            let frames_before = s.stats().frames;
            engine.set_failure_injector(Arc::new(PanicOn {
                phase: EnginePhase::Estimate,
                session: s.id(),
            }));
            // The estimate runs only with key state present, speculatively
            // (workers > 1) or inline — contained either way.
            match engine.process(&mut s, &frame(1)) {
                FrameOutcome::Rejected(AmcError::WorkerPanicked { phase, .. }) => {
                    assert_eq!(phase, "estimate");
                }
                other => panic!("expected a contained estimate panic, got {other:?}"),
            }
            assert!(s.is_quarantined());
            assert_eq!(
                s.stats().frames,
                frames_before,
                "a pre-commit panic leaves the frame counters untouched"
            );
        }
    }

    #[test]
    fn prefix_phase_panic_quarantines_the_key_frame_owner() {
        quiet_chaos_panics();
        for workers in [1usize, 3] {
            let mut engine = engine_with_workers(3, workers);
            let mut a = engine.open_session().unwrap();
            let mut b = engine.open_session().unwrap();
            engine.set_failure_injector(Arc::new(PanicOn {
                phase: EnginePhase::Prefix,
                session: a.id(),
            }));
            // Both first frames are key frames; only a's job panics in its
            // prefix bucket, b's key frame completes normally.
            let f = frame(0);
            let results = engine.process_batch([(&mut a, &f), (&mut b, &f)]);
            match &results[0] {
                FrameOutcome::Rejected(AmcError::WorkerPanicked { phase, .. }) => {
                    assert_eq!(*phase, "prefix");
                }
                other => panic!("expected a contained prefix panic, got {other:?}"),
            }
            assert!(a.is_quarantined());
            assert!(results[1].frame().unwrap().is_key);
            assert!(!b.is_quarantined());
        }
    }

    /// Delay injector: stall `session`'s estimate through the tick clock.
    struct DelayOn {
        session: u64,
        ms: u64,
    }

    impl FailureInjector for DelayOn {
        fn action(&self, phase: EnginePhase, _tick: u64, session: u64) -> FailureAction {
            if phase == EnginePhase::Estimate && session == self.session {
                FailureAction::Delay { ms: self.ms }
            } else {
                FailureAction::None
            }
        }
    }

    #[test]
    fn tick_deadline_sheds_keys_but_serves_predicted() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let limits = EngineLimits::builder().tick_deadline_ms(5).build().unwrap();
        let mut engine = Engine::with_limits(net, AmcConfig::default(), limits).unwrap();
        let clock = Arc::new(FakeClock::new());
        engine.set_tick_clock(Arc::clone(&clock) as Arc<dyn TickClock>);
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        engine.process(&mut a, &frame(0)).unwrap(); // a has key state
        assert_eq!(engine.health().deadline_overruns, 0);
        // a's estimate stalls 10 ms > the 5 ms budget; b's key-frame
        // upgrade behind it is shed with zero trace, while a's own
        // (already admitted) predicted frame still completes.
        engine.set_failure_injector(Arc::new(DelayOn {
            session: a.id(),
            ms: 10,
        }));
        let f = frame(1);
        let results = engine.process_batch([(&mut a, &f), (&mut b, &f)]);
        assert!(
            !results[0].frame().unwrap().is_key,
            "the overrun tick still serves its predicted frame"
        );
        match &results[1] {
            FrameOutcome::Shed(AmcError::BudgetExceeded {
                what: "tick deadline",
                budget: 5,
            }) => {}
            other => panic!("expected a deadline shed, got {other:?}"),
        }
        assert_eq!(b.stats().frames, 0, "a deadline shed leaves no trace");
        let health = engine.health();
        assert_eq!(health.deadline_overruns, 1);
        assert_eq!(health.deadline_sheds, 1);
        assert_eq!(health.budget_sheds, 0);
        // Next tick starts a fresh budget: b's key frame is admitted.
        engine.clear_failure_injector();
        assert!(engine.process(&mut b, &f).unwrap().is_key);
        assert_eq!(engine.health().deadline_overruns, 1);
    }

    #[test]
    fn health_snapshot_tracks_ticks_serves_and_percentiles() {
        let net = Arc::new(zoo::tiny_fasterm(4).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let clock = Arc::new(FakeClock::new());
        engine.set_tick_clock(Arc::clone(&clock) as Arc<dyn TickClock>);
        assert_eq!(engine.health(), EngineHealth::default());
        let mut s = engine.open_session().unwrap();
        for t in 0..4 {
            engine.process(&mut s, &frame(t)).unwrap();
            clock.advance_us(100); // between ticks: not counted as duration
        }
        let health = engine.health();
        assert_eq!(health.ticks, 4);
        assert_eq!(health.frames_served, 4);
        assert_eq!(health.panics_caught, 0);
        assert_eq!(
            (health.tick_p50_us, health.tick_p99_us),
            (0, 0),
            "a fake clock static within ticks measures zero-length ticks"
        );
        // Eviction bookkeeping: engine-driven evictions are counted.
        engine.evict_session(&mut s).unwrap();
        assert_eq!(engine.health().evicted_sessions, 1);
    }

    #[test]
    fn seeded_chaos_is_pure_and_seed_sensitive() {
        let chaos = SeededChaos::new(7);
        let mut panics = 0usize;
        let mut delays = 0usize;
        for tick in 0..50u64 {
            for session in 0..20u64 {
                for phase in [
                    EnginePhase::Estimate,
                    EnginePhase::Admit,
                    EnginePhase::Prefix,
                    EnginePhase::Complete,
                ] {
                    let action = chaos.action(phase, tick, session);
                    assert_eq!(
                        action,
                        chaos.action(phase, tick, session),
                        "pure in (phase, tick, session)"
                    );
                    match action {
                        FailureAction::Panic => panics += 1,
                        FailureAction::Delay { .. } => delays += 1,
                        FailureAction::None => {}
                    }
                }
            }
        }
        // 4000 rolls at 6% / 4% nominal rates: generous bounds, no flake.
        assert!((100..500).contains(&panics), "panic rolls: {panics}");
        assert!((60..400).contains(&delays), "delay rolls: {delays}");
        let other = SeededChaos::new(8);
        assert!(
            (0..1000u64).any(|t| chaos.action(EnginePhase::Admit, t, 0)
                != other.action(EnginePhase::Admit, t, 0)),
            "different seeds must disagree somewhere"
        );
    }

    #[test]
    fn clocks_behave() {
        let fake = FakeClock::new();
        assert_eq!(fake.now_us(), 0);
        fake.advance_ms(2);
        assert_eq!(fake.now_us(), 2000);
        fake.sleep_us(500); // a fake sleep advances instead of blocking
        assert_eq!(fake.now_us(), 2500);
        let wall = MonotonicClock::new();
        let a = wall.now_us();
        assert!(wall.now_us() >= a, "monotonic never goes backwards");
    }

    #[test]
    fn zero_tick_deadline_is_rejected() {
        assert!(matches!(
            EngineLimits::builder().tick_deadline_ms(0).build(),
            Err(AmcError::InvalidConfig { .. })
        ));
        // u64::MAX (the default) means "no deadline" and is valid.
        let limits = EngineLimits::builder().build().unwrap();
        assert_eq!(limits.tick_deadline_ms, u64::MAX);
    }

    #[test]
    fn engine_executor_surfaces_refusals_as_typed_errors() {
        // Regression for the removed `.expect("an unlimited engine serves
        // every frame")`: a bad frame through the FrameExecutor seam must
        // come back as a typed error, not a harness-killing panic.
        use crate::pipeline::FrameExecutor;
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut exec = EngineExecutor::new(net, AmcConfig::default(), 1).unwrap();
        let served = exec.push_frame(&frame(0)).unwrap();
        assert!(served.unwrap().is_key);
        let small = GrayImage::from_fn(24, 24, |y, x| ((y * 7 + x) % 199) as u8);
        match exec.push_frame(&small) {
            Err(AmcError::FrameGeometryMismatch { got_height: 24, .. }) => {}
            other => panic!("expected a typed geometry refusal, got {other:?}"),
        }
        // The refusal cost nothing: the stream keeps serving.
        assert!(!exec.push_frame(&frame(1)).unwrap().unwrap().is_key);
    }
}
