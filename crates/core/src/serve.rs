//! Session-based serving: one [`Engine`] per network, one
//! [`StreamSession`] per video stream, cross-stream batched key frames.
//!
//! The paper's EVA² unit sits in front of *shared* layer accelerators and
//! serves a stream of frames; a deployment serves many such streams from
//! one process. The single-stream [`AmcExecutor`](crate::executor::AmcExecutor)
//! cannot model that: it borrows its network and fuses per-stream state
//! (key frame, policy, stats) with per-process resources (the network,
//! GEMM scratch). This module splits them:
//!
//! * [`Engine`] owns the process-wide resources — an [`Arc<Network>`] plus
//!   the shared im2col/packing scratch pools — and executes frames.
//! * [`StreamSession`] holds exactly the per-stream state: the stored key
//!   frame and its sparse activation, the key-frame policy, the RFBME
//!   scratch, and per-stream statistics. Sessions are cheap, independent,
//!   and `Send`.
//!
//! # The batching seam
//!
//! Key frames are where the money is: a key frame runs the full CNN
//! prefix, a predicted frame only warps and runs the suffix. Key frames
//! from *independent* streams arrive decorrelated — one stream's scene cut
//! does not align with another's — so a serving process regularly holds
//! several key frames at once. [`Engine::process_batch`] classifies every
//! submitted frame with its own session's RFBME + policy (bit-identical to
//! serial processing), then executes all key-frame prefixes through
//! `Network::forward_prefix_batched`: weight panels pack once per layer
//! per batch, the unpacked-B micro-kernel skips the per-frame repack, and
//! outputs store in a single bias+product pass. Batching across streams is
//! strictly better than within one stream — it adds no latency, because no
//! stream waits on its own future frames.
//!
//! # The predicted-frame fast path
//!
//! Predicted frames are the steady-state common case — key frames are
//! deliberately rare — so their path is kept free of dense intermediates:
//! RFBME runs the two-level best-first search
//! (`eva2_motion::rfbme`, with per-stream pruning counters surfaced in
//! [`ExecStats`]), and warping emits the sparse activation *directly*
//! ([`crate::warp::warp_activation_sparse`] /
//! [`crate::warp::warp_activation_fixed_sparse`]) into the skip-zero CNN
//! suffix. A predicted frame therefore flows RFBME → warp → sparse suffix
//! without ever materialising or re-compressing a dense activation tensor,
//! mirroring the hardware's sparse activation memory. The fused seam is
//! bit-identical to dense-warp-then-extract, so the wrapper guarantee
//! below is unaffected.
//!
//! # The single-stream wrapper guarantee
//!
//! `AmcExecutor` (and therefore `PipelinedExecutor`) is a thin wrapper
//! over the same per-session state machine ([`SessionCore`]) this module
//! runs: one session, one borrowed network, one private scratch. Every
//! output, decision, and statistic is **bit-identical** across all three
//! entry points — serial executor, pipelined executor, and engine sessions
//! (single or batched) — which `crates/core/tests/serve_interleaved.rs`
//! and `pipeline_bitident.rs` enforce. Existing single-stream callers keep
//! working unchanged; multi-stream callers get batching by switching to
//! the engine.
//!
//! # Example
//!
//! ```
//! use eva2_cnn::zoo;
//! use eva2_core::executor::AmcConfig;
//! use eva2_core::serve::Engine;
//! use eva2_tensor::GrayImage;
//! use std::sync::Arc;
//!
//! let net = Arc::new(zoo::tiny_fasterm(7).network);
//! let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
//! let mut cam_a = engine.open_session();
//! let mut cam_b = engine.open_session();
//! let frame = GrayImage::from_fn(48, 48, |y, x| {
//!     (120 + ((y * 7 + x * 3) % 64)) as u8
//! });
//! // Batched submission: both streams' first frames are key frames and
//! // share one batched prefix pass.
//! let results = engine.process_batch([(&mut cam_a, &frame), (&mut cam_b, &frame)]);
//! assert!(results.iter().all(|r| r.is_key));
//! // Streams advance independently.
//! let r = engine.process(&mut cam_a, &frame);
//! assert!(!r.is_key);
//! assert_eq!(cam_a.stats().frames, 2);
//! assert_eq!(cam_b.stats().frames, 1);
//! ```

use crate::error::AmcError;
use crate::executor::{AmcConfig, AmcFrameResult, ExecStats, WarpMode};
use crate::policy::{FrameKind, FrameMetrics, KeyFramePolicy};
use crate::sparse::RleActivation;
use crate::warp::{warp_activation_fixed_sparse, warp_activation_sparse};
use eva2_cnn::network::Network;
use eva2_motion::rfbme::{RfGeometry, Rfbme, RfbmeResult, RfbmeScratch};
use eva2_tensor::interp::Interpolation;
use eva2_tensor::{GemmScratch, GrayImage, SparseActivation, Tensor3};
use std::sync::Arc;

/// Stored key-frame state: the pixel buffer and the sparse activation
/// buffer.
#[derive(Debug, Clone)]
struct KeyState {
    image: GrayImage,
    /// The compressed activation as the hardware stores it.
    rle: RleActivation,
    /// Non-zero view feeding the sparse-aware suffix on memoized frames.
    sparse: SparseActivation,
    /// Decoded copy kept for software-speed warping (the hardware decodes
    /// through the sparsity lanes on the fly).
    decoded: Tensor3,
}

/// The per-stream AMC state machine: everything one video stream needs
/// between frames, and nothing a stream shares with its neighbours.
///
/// Both [`StreamSession`] and the single-stream
/// [`AmcExecutor`](crate::executor::AmcExecutor) wrap exactly this type,
/// which is what makes their outputs bit-identical: there is one
/// implementation of the frame state machine, parameterised on a borrowed
/// network and GEMM scratch at each call.
#[derive(Debug)]
pub(crate) struct SessionCore {
    target: usize,
    rf: RfGeometry,
    rfbme: Rfbme,
    rfbme_scratch: RfbmeScratch,
    warp_mode: WarpMode,
    fixed_point: bool,
    sparsity_threshold: f32,
    policy: Box<dyn KeyFramePolicy>,
    state: Option<KeyState>,
    frames_since_key: usize,
    stats: ExecStats,
    prefix_macs: u64,
    total_macs: u64,
}

impl SessionCore {
    /// Builds a core for `net` under `config`, validating both.
    pub(crate) fn new(net: &Network, config: &AmcConfig) -> Result<Self, AmcError> {
        config.validate()?;
        let (target, rf) = config.target.geometry(net)?;
        Ok(Self {
            target,
            rf,
            rfbme: Rfbme::new(rf, config.search),
            rfbme_scratch: RfbmeScratch::new(),
            warp_mode: config.warp,
            fixed_point: config.fixed_point,
            sparsity_threshold: config.sparsity_threshold,
            policy: config.policy.build(),
            state: None,
            frames_since_key: 0,
            stats: ExecStats::default(),
            prefix_macs: net.prefix_macs(target),
            total_macs: net.total_macs(),
        })
    }

    pub(crate) fn target(&self) -> usize {
        self.target
    }

    pub(crate) fn rf(&self) -> RfGeometry {
        self.rf
    }

    pub(crate) fn rfbme(&self) -> Rfbme {
        self.rfbme
    }

    pub(crate) fn stats(&self) -> ExecStats {
        self.stats
    }

    pub(crate) fn prefix_macs(&self) -> u64 {
        self.prefix_macs
    }

    pub(crate) fn total_macs(&self) -> u64 {
        self.total_macs
    }

    pub(crate) fn policy_name(&self) -> &str {
        self.policy.name()
    }

    pub(crate) fn reset(&mut self) {
        self.state = None;
        self.frames_since_key = 0;
    }

    pub(crate) fn key_activation(&self) -> Option<&RleActivation> {
        self.state.as_ref().map(|s| &s.rle)
    }

    pub(crate) fn key_image(&self) -> Option<&GrayImage> {
        self.state.as_ref().map(|s| &s.image)
    }

    /// Runs this stream's RFBME from the stored key frame to `image`
    /// (`None` when no key state exists yet).
    pub(crate) fn estimate_motion(&mut self, image: &GrayImage) -> Option<RfbmeResult> {
        let state = self.state.as_ref()?;
        Some(
            self.rfbme
                .estimate_with(&state.image, image, &mut self.rfbme_scratch),
        )
    }

    /// Opens a frame: bumps the per-stream counters, derives the metrics,
    /// and asks the policy for the frame kind. Must be followed by exactly
    /// one matching `finish_key_frame`/`finish_predicted`.
    pub(crate) fn begin_frame(
        &mut self,
        motion: &Option<RfbmeResult>,
    ) -> (FrameKind, Option<FrameMetrics>, u64) {
        self.stats.frames += 1;
        self.frames_since_key += 1;
        let metrics = motion
            .as_ref()
            .map(|m| FrameMetrics::from_rfbme(m, self.frames_since_key));
        let rfbme_ops = motion.as_ref().map_or(0, |m| m.ops());
        self.stats.rfbme_ops += rfbme_ops;
        if let Some(m) = motion.as_ref() {
            self.stats.rfbme_candidates += m.search.candidates;
            self.stats.rfbme_level0_rejects += m.search.rejected_level0;
            self.stats.rfbme_level1_rejects += m.search.rejected_level1;
        }
        let kind = match &metrics {
            None => FrameKind::Key,
            Some(m) => self.policy.decide(m),
        };
        (kind, metrics, rfbme_ops)
    }

    /// Completes a key frame from its already-computed prefix activation:
    /// encodes the sparse store, runs the suffix, refreshes the key state.
    pub(crate) fn finish_key_frame(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        image: &GrayImage,
        act: Tensor3,
        metrics: Option<FrameMetrics>,
        rfbme_ops: u64,
    ) -> AmcFrameResult {
        let rle = RleActivation::encode(&act, self.sparsity_threshold);
        let compression = rle.compression();
        // The suffix consumes the *quantized* activation on real hardware;
        // feed it straight from the sparse store (skip-zero, no densify) so
        // key and predicted frames share numerics.
        let sparse = rle.to_sparse();
        let output = net.forward_suffix_sparse(&sparse, self.target, scratch);
        let decoded = sparse.to_dense();
        self.state = Some(KeyState {
            image: image.clone(),
            rle,
            sparse,
            decoded,
        });
        self.policy.note_key_frame();
        self.frames_since_key = 0;
        self.stats.key_frames += 1;
        self.stats.macs += self.total_macs;
        AmcFrameResult {
            output,
            is_key: true,
            macs_executed: self.total_macs,
            rfbme_ops,
            warp: None,
            metrics,
            compression: Some(compression),
        }
    }

    /// Completes a predicted frame: warps (or memoizes) the stored
    /// activation and runs the sparse suffix.
    pub(crate) fn finish_predicted(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        motion: &RfbmeResult,
        metrics: Option<FrameMetrics>,
        rfbme_ops: u64,
    ) -> AmcFrameResult {
        let state = self.state.as_ref().expect("predicted frame requires state");
        // Both arms feed the suffix through the sparse entry point: zero
        // runs in the stored/warped activation are skipped, not densified
        // and multiplied (§IV skip-zero behaviour). Warping emits the
        // sparse representation *directly* (fused warp→sparse, see
        // `crate::warp`): a predicted frame never materialises a dense
        // activation tensor, exactly like the hardware's sparse activation
        // memory. The fused entries are bit-identical to
        // dense-warp-then-`from_dense`, so outputs match the PR-4 path.
        let (output, warp_stats) = match self.warp_mode {
            WarpMode::Memoize => {
                let output = net.forward_suffix_sparse(&state.sparse, self.target, scratch);
                (output, None)
            }
            WarpMode::MotionCompensate { bilinear } => {
                let field = &motion.field;
                let (sparse, ws) = if self.fixed_point {
                    warp_activation_fixed_sparse(&state.decoded, field, self.rf.stride)
                } else {
                    let method = if bilinear {
                        Interpolation::Bilinear
                    } else {
                        Interpolation::NearestNeighbor
                    };
                    warp_activation_sparse(&state.decoded, field, self.rf.stride, method)
                };
                let output = net.forward_suffix_sparse(&sparse, self.target, scratch);
                (output, Some(ws))
            }
        };
        if let Some(ws) = &warp_stats {
            self.stats.warp_interpolations += ws.interpolations;
        }
        let suffix_macs = self.total_macs - self.prefix_macs;
        self.stats.macs += suffix_macs;
        AmcFrameResult {
            output,
            is_key: false,
            macs_executed: suffix_macs,
            rfbme_ops,
            warp: warp_stats,
            metrics,
            compression: None,
        }
    }

    /// The serial whole-frame path: estimate, decide, execute.
    pub(crate) fn process(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        image: &GrayImage,
    ) -> AmcFrameResult {
        // EVA² always runs RFBME — its block errors drive the key-frame
        // choice module even when warping is disabled (memoization mode).
        let motion = self.estimate_motion(image);
        self.process_with_motion_hook(net, scratch, image, motion, |_| {})
    }

    /// [`SessionCore::process`] with an externally computed motion
    /// estimate and a hook invoked right after the key-frame decision,
    /// *before* any CNN or warp work — the pipelined executor's dispatch
    /// point for the next frame's estimate.
    pub(crate) fn process_with_motion_hook(
        &mut self,
        net: &Network,
        scratch: &mut GemmScratch,
        image: &GrayImage,
        motion: Option<RfbmeResult>,
        after_decision: impl FnOnce(FrameKind),
    ) -> AmcFrameResult {
        let (kind, metrics, rfbme_ops) = self.begin_frame(&motion);
        after_decision(kind);
        match kind {
            FrameKind::Key => {
                let input = image.to_tensor();
                let act = net.forward_prefix_scratch(&input, self.target, scratch);
                self.finish_key_frame(net, scratch, image, act, metrics, rfbme_ops)
            }
            FrameKind::Predicted => {
                let motion = motion.expect("predicted frame requires motion");
                self.finish_predicted(net, scratch, &motion, metrics, rfbme_ops)
            }
        }
    }
}

/// A serving engine: one network, shared scratch pools, any number of
/// independent [`StreamSession`]s. See the [module docs](self).
pub struct Engine {
    net: Arc<Network>,
    base: AmcConfig,
    target: usize,
    rf: RfGeometry,
    prefix_macs: u64,
    total_macs: u64,
    /// Shared im2col/pack pools: every session's CNN work runs through
    /// these, so steady-state serving allocates no convolution scratch no
    /// matter how many streams are open.
    scratch: GemmScratch,
    /// Process-unique engine identity, stamped into every session so
    /// cross-engine session use fails loudly instead of silently running
    /// one engine's key state against another engine's network.
    engine_id: u64,
    next_session: u64,
}

/// Source of process-unique [`Engine`] identities.
static NEXT_ENGINE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(net={}, target={}, rf={:?}, sessions_opened={})",
            self.net.name(),
            self.target,
            self.rf,
            self.next_session
        )
    }
}

impl Engine {
    /// Creates an engine over `net` with `config` as the default session
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the configuration fails validation or its
    /// target selection cannot be resolved for `net`.
    pub fn new(net: Arc<Network>, config: AmcConfig) -> Result<Self, AmcError> {
        config.validate()?;
        let (target, rf) = config.target.geometry(&net)?;
        let prefix_macs = net.prefix_macs(target);
        let total_macs = net.total_macs();
        Ok(Self {
            net,
            base: config,
            target,
            rf,
            prefix_macs,
            total_macs,
            scratch: GemmScratch::new(),
            engine_id: NEXT_ENGINE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            next_session: 0,
        })
    }

    fn check_session(&self, session: &StreamSession) {
        assert_eq!(
            session.engine_id, self.engine_id,
            "session {} was opened by a different engine",
            session.id
        );
    }

    /// The served network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The default session configuration.
    pub fn config(&self) -> AmcConfig {
        self.base
    }

    /// The resolved target layer index (shared by all sessions).
    pub fn target(&self) -> usize {
        self.target
    }

    /// The receptive-field geometry RFBME matches at.
    pub fn rf_geometry(&self) -> RfGeometry {
        self.rf
    }

    /// MACs of the skipped prefix (key-frame-only work).
    pub fn prefix_macs(&self) -> u64 {
        self.prefix_macs
    }

    /// MACs of a full CNN pass.
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Opens a new stream session with the engine's default configuration.
    pub fn open_session(&mut self) -> StreamSession {
        self.open_session_with(self.base)
            .expect("engine config validated at construction")
    }

    /// Opens a new stream session with a per-stream configuration —
    /// streams may differ in policy, warp mode, fixed-point datapath, and
    /// sparsity threshold.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the configuration fails validation, or
    /// [`AmcError::SessionTargetMismatch`] when it resolves to a different
    /// target layer than the engine's (all sessions must share the
    /// engine's batched prefix split point).
    pub fn open_session_with(&mut self, config: AmcConfig) -> Result<StreamSession, AmcError> {
        let core = SessionCore::new(&self.net, &config)?;
        if core.target() != self.target {
            return Err(AmcError::SessionTargetMismatch {
                engine: self.target,
                session: core.target(),
            });
        }
        let id = self.next_session;
        self.next_session += 1;
        Ok(StreamSession {
            id,
            engine_id: self.engine_id,
            core,
        })
    }

    /// Processes one frame of one stream — identical in behaviour (and
    /// bits) to a batch of one.
    ///
    /// # Panics
    ///
    /// Panics when `session` was opened by a different engine (its key
    /// state would otherwise silently run against the wrong network).
    pub fn process(&mut self, session: &mut StreamSession, frame: &GrayImage) -> AmcFrameResult {
        self.check_session(session);
        session.core.process(&self.net, &mut self.scratch, frame)
    }

    /// Processes one frame from each of several streams, batching the
    /// key-frame prefixes across streams.
    ///
    /// Every frame is classified by its own session's RFBME estimate and
    /// policy (in submission order); the frames decided *key* then share
    /// one `forward_prefix_batched` pass before each session completes its
    /// frame (sparse store refresh + suffix for keys, warp + suffix for
    /// predicted). Results come back in submission order and are
    /// bit-identical to processing each `(session, frame)` pair serially
    /// through [`Engine::process`].
    ///
    /// Frames must share the engine network's input resolution (all
    /// sessions of one engine serve one model).
    ///
    /// # Panics
    ///
    /// Panics when any session was opened by a different engine.
    pub fn process_batch<'a>(
        &mut self,
        jobs: impl IntoIterator<Item = (&'a mut StreamSession, &'a GrayImage)>,
    ) -> Vec<AmcFrameResult> {
        struct Plan {
            kind: FrameKind,
            metrics: Option<FrameMetrics>,
            rfbme_ops: u64,
            motion: Option<RfbmeResult>,
        }
        let mut jobs: Vec<(&mut StreamSession, &GrayImage)> = jobs.into_iter().collect();
        // Phase 1: per-stream motion estimation + key-frame decision, in
        // submission order (independent across sessions, so identical to
        // the serial interleaving).
        let mut plans = Vec::with_capacity(jobs.len());
        let mut key_inputs = Vec::new();
        for (session, frame) in jobs.iter_mut() {
            self.check_session(session);
            let motion = session.core.estimate_motion(frame);
            let (kind, metrics, rfbme_ops) = session.core.begin_frame(&motion);
            if kind == FrameKind::Key {
                key_inputs.push(frame.to_tensor());
            }
            plans.push(Plan {
                kind,
                metrics,
                rfbme_ops,
                motion,
            });
        }
        // Phase 2: one batched prefix pass over every key frame in the
        // batch (bit-identical per frame to the serial prefix).
        let mut acts = self
            .net
            .forward_prefix_batched(key_inputs, self.target, &mut self.scratch)
            .into_iter();
        // Phase 3: per-stream completion, in submission order.
        jobs.into_iter()
            .zip(plans)
            .map(|((session, frame), plan)| match plan.kind {
                FrameKind::Key => {
                    let act = acts.next().expect("one prefix activation per key frame");
                    session.core.finish_key_frame(
                        &self.net,
                        &mut self.scratch,
                        frame,
                        act,
                        plan.metrics,
                        plan.rfbme_ops,
                    )
                }
                FrameKind::Predicted => {
                    let motion = plan.motion.expect("predicted frame requires motion");
                    session.core.finish_predicted(
                        &self.net,
                        &mut self.scratch,
                        &motion,
                        plan.metrics,
                        plan.rfbme_ops,
                    )
                }
            })
            .collect()
    }
}

/// Per-stream serving state: key-frame buffers, policy, statistics. Opened
/// by [`Engine::open_session`]; submit frames through
/// [`Engine::process`] / [`Engine::process_batch`].
#[derive(Debug)]
pub struct StreamSession {
    id: u64,
    /// Identity of the engine that opened this session; checked on every
    /// submission (see [`Engine::process`]).
    engine_id: u64,
    core: SessionCore,
}

impl StreamSession {
    /// The engine-assigned session id (unique per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Aggregate statistics over this stream's processed frames.
    pub fn stats(&self) -> ExecStats {
        self.core.stats()
    }

    /// The resolved target layer index.
    pub fn target(&self) -> usize {
        self.core.target()
    }

    /// Drops stored state, forcing this stream's next frame to be a key
    /// frame (e.g. on a known scene cut or after a seek).
    pub fn reset(&mut self) {
        self.core.reset()
    }

    /// The compressed key activation currently buffered, if any.
    pub fn key_activation(&self) -> Option<&RleActivation> {
        self.core.key_activation()
    }

    /// The stored key-frame pixel buffer, if any.
    pub fn key_image(&self) -> Option<&GrayImage> {
        self.core.key_image()
    }
}

// Sessions hop threads in serving deployments (one task per camera);
// enforce the property where the type is defined.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StreamSession>();
    assert_send::<Engine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AmcExecutor;
    use crate::policy::PolicyConfig;
    use crate::target::TargetSelection;
    use eva2_cnn::zoo;

    fn frame(shift: usize) -> GrayImage {
        GrayImage::from_fn(48, 48, |y, x| {
            let xs = (x + shift) as f32;
            (122.0 + 46.0 * ((y as f32 * 0.31).sin() + (xs * 0.21).cos())) as u8
        })
    }

    #[test]
    fn sessions_are_independent() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut a = engine.open_session();
        let mut b = engine.open_session();
        assert_ne!(a.id(), b.id());
        let f = frame(0);
        assert!(engine.process(&mut a, &f).is_key);
        // Session b has no key state yet; its first frame is still key.
        assert!(engine.process(&mut b, &f).is_key);
        assert!(!engine.process(&mut a, &f).is_key);
        assert_eq!(a.stats().frames, 2);
        assert_eq!(b.stats().frames, 1);
        b.reset();
        assert!(engine.process(&mut b, &f).is_key);
    }

    #[test]
    fn batched_keys_match_serial_executor_bits() {
        let z = zoo::tiny_fasterm(3);
        let net = Arc::new(zoo::tiny_fasterm(3).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut sessions: Vec<StreamSession> = (0..3).map(|_| engine.open_session()).collect();
        let frames: Vec<GrayImage> = (0..3).map(|i| frame(i * 5)).collect();
        // All three first frames are key frames → batched prefix.
        let jobs = sessions.iter_mut().zip(frames.iter());
        let results = engine.process_batch(jobs);
        assert!(results.iter().all(|r| r.is_key));
        for (f, r) in frames.iter().zip(&results) {
            let mut serial = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
            let want = serial.process(f);
            assert_eq!(r.output.as_slice(), want.output.as_slice());
            assert_eq!(r.compression, want.compression);
            assert_eq!(r.macs_executed, want.macs_executed);
        }
    }

    #[test]
    fn mixed_batch_handles_keys_and_predicted() {
        let net = Arc::new(zoo::tiny_fasterm(1).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut a = engine.open_session();
        let mut b = engine.open_session();
        let f0 = frame(0);
        engine.process(&mut a, &f0); // a has key state
        let results = engine.process_batch([(&mut a, &f0), (&mut b, &f0)]);
        assert!(!results[0].is_key, "a predicts its unchanged scene");
        assert!(results[1].is_key, "b's first frame is key");
        assert_eq!(a.stats().key_frames, 1);
        assert_eq!(b.stats().key_frames, 1);
    }

    #[test]
    fn sessions_surface_rfbme_pruning_counters() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let mut session = engine.open_session();
        let f0 = frame(0);
        let f1 = frame(1);
        engine.process(&mut session, &f0);
        assert_eq!(
            session.stats().rfbme_candidates,
            0,
            "no estimate ran on the first frame"
        );
        engine.process(&mut session, &f1);
        let s = session.stats();
        assert!(s.rfbme_candidates > 0, "second frame ran the search");
        assert!(
            s.rfbme_level0_rejects + s.rfbme_level1_rejects > 0,
            "the two-level search prunes on a drifting scene: {s:?}"
        );
        let refined = s.rfbme_candidates - s.rfbme_level0_rejects - s.rfbme_level1_rejects;
        assert!(
            refined < s.rfbme_candidates,
            "refined {refined} of {} candidates",
            s.rfbme_candidates
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        assert!(engine.process_batch([]).is_empty());
    }

    #[test]
    fn per_session_configs_may_differ_but_target_must_match() {
        let net = Arc::new(zoo::tiny_faster16(0).network);
        let mut engine = Engine::new(net, AmcConfig::default()).unwrap();
        let memo = AmcConfig {
            warp: WarpMode::Memoize,
            policy: PolicyConfig::StaticRate { period: 2 },
            ..Default::default()
        };
        assert!(engine.open_session_with(memo).is_ok());
        let early = AmcConfig {
            target: TargetSelection::Early,
            ..Default::default()
        };
        match engine.open_session_with(early) {
            Err(AmcError::SessionTargetMismatch {
                engine: e,
                session: s,
            }) => {
                assert_ne!(e, s);
            }
            other => panic!("expected SessionTargetMismatch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different engine")]
    fn cross_engine_session_use_panics() {
        // Two engines over different weights can resolve the same target
        // index; silently mixing their sessions would run one engine's key
        // state against the other's network.
        let mut a =
            Engine::new(Arc::new(zoo::tiny_fasterm(0).network), AmcConfig::default()).unwrap();
        let mut b =
            Engine::new(Arc::new(zoo::tiny_fasterm(1).network), AmcConfig::default()).unwrap();
        let mut session = a.open_session();
        let f = frame(0);
        b.process(&mut session, &f);
    }

    #[test]
    fn engine_rejects_invalid_config() {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let bad = AmcConfig {
            target: TargetSelection::Index(99),
            ..Default::default()
        };
        assert!(matches!(
            Engine::new(net, bad),
            Err(AmcError::TargetOutsidePrefix { index: 99, .. })
        ));
    }
}
