//! Streaming two-thread pipeline: overlap RFBME with CNN execution.
//!
//! The serial [`AmcExecutor`](crate::executor::AmcExecutor) runs each frame's
//! stages back to back: RFBME, key-frame decision, then either the full CNN
//! or warp + sparse suffix. But motion estimation for frame *t + 1* only
//! depends on the *pixels* of the stored key frame — which are final the
//! moment frame *t*'s key-frame decision is made, before any CNN work runs.
//! [`PipelinedExecutor`] exploits that: a worker thread computes RFBME for
//! the next frame while the main thread executes the current frame's CNN
//! work, the hardware-style decoupling the paper's EVA² unit achieves by
//! being a separate block in front of the layer accelerators (Fig 6).
//!
//! # The two-thread hand-off
//!
//! ```text
//! main thread                         worker thread (rfbme-worker)
//! ───────────                         ────────────────────────────
//! push(fₜ):
//!   recv motion(fₜ₋₁)  ◄───────────── estimate(key, fₜ₋₁) done earlier
//!   decide key/predicted for fₜ₋₁
//!   send Estimate{fₜ, new key?} ────► estimate(key, fₜ) starts
//!   run CNN / warp+suffix for fₜ₋₁      … runs concurrently …
//!   return result(fₜ₋₁)
//! ```
//!
//! Both directions use a **bounded** channel
//! ([`std::sync::mpsc::sync_channel`] of capacity 1): at most one estimate
//! is ever in flight, so the worker can never run ahead of the key-frame
//! state and a dropped executor never leaves the worker blocked. The worker
//! owns a *copy* of the key-frame pixels, refreshed via the same message
//! that requests an estimate, so no locking is involved anywhere.
//!
//! Results are **bit-identical** to the serial executor's: the worker runs
//! the exact same [`Rfbme`] the serial path would (same inputs, same code,
//! same floats), and the main thread consumes the estimate through
//! [`AmcExecutor::process_with_motion`]. The only observable difference is
//! latency: [`PipelinedExecutor::push`] returns the result of the *previous*
//! frame (`None` on the first), and [`PipelinedExecutor::flush`] drains the
//! last one.
//!
//! The overlap needs ≥ 2 hardware threads to convert into wall-clock time;
//! on a single-CPU host the two threads time-slice and the pipeline
//! gracefully degrades to serial cost plus a few microseconds of hand-off
//! per frame (still bit-identical). The win is largest on key-frame-heavy
//! streams, where a full CNN pass hides the whole of the next frame's
//! RFBME.
//!
//! [`FrameExecutor`] abstracts over both executors so benches and
//! experiments can drive either interchangeably; see
//! `crates/bench/benches/pipeline.rs` for the overlap measurement. To
//! regenerate the committed performance trajectory after touching this
//! module or the motion kernels, run:
//!
//! ```text
//! cargo run --release -p eva2-bench --bin bench_conv
//! ```
//!
//! which rewrites `BENCH_conv.json` (including the
//! `pipeline/predicted_frame/pipelined` and `rfbme/*` entries) with
//! measurements from your machine; `cargo run --release -p eva2-bench --bin
//! bench_gate` then cross-checks the tracked speedup ratios against it.

use crate::error::AmcError;
use crate::executor::{AmcExecutor, AmcFrameResult, ExecStats};
use crate::policy::FrameKind;
use eva2_motion::rfbme::{Rfbme, RfbmeResult, RfbmeScratch};
use eva2_tensor::GrayImage;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Common interface over frame executors, so callers (benches, experiment
/// protocols) can swap the serial and pipelined implementations freely.
pub trait FrameExecutor {
    /// Short name for reports (`"serial"`, `"pipelined"`).
    fn name(&self) -> &'static str;

    /// Accepts the next frame of a stream, returning a completed result
    /// when one is available: the same frame immediately for the serial
    /// executor, the *previous* frame for the pipelined one.
    ///
    /// # Errors
    ///
    /// Returns the executor's typed refusal (e.g.
    /// [`AmcError::FrameGeometryMismatch`] for an off-geometry frame, or
    /// an engine-backed executor's containment errors) instead of
    /// panicking — a harness must not be able to kill a serving process.
    fn push_frame(&mut self, frame: &GrayImage) -> Result<Option<AmcFrameResult>, AmcError>;

    /// Executes and returns any frame still in flight, emptying the
    /// pipeline (`None` when nothing is pending — always for the serial
    /// executor).
    fn finish(&mut self) -> Option<AmcFrameResult>;

    /// Processes a clip, returning one result per frame in order. Key-frame
    /// state persists across calls (like the serial executor's); call
    /// [`FrameExecutor::reset`] between independent clips.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first frame refusal (see
    /// [`FrameExecutor::push_frame`]).
    fn process_clip(&mut self, frames: &[GrayImage]) -> Result<Vec<AmcFrameResult>, AmcError> {
        let mut out = Vec::with_capacity(frames.len());
        for frame in frames {
            if let Some(r) = self.push_frame(frame)? {
                out.push(r);
            }
        }
        if let Some(r) = self.finish() {
            out.push(r);
        }
        Ok(out)
    }

    /// Aggregate statistics over every frame processed so far.
    fn stats(&self) -> ExecStats;

    /// Drops stored state, forcing the next frame to be a key frame.
    fn reset(&mut self);
}

impl FrameExecutor for AmcExecutor<'_> {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn push_frame(&mut self, frame: &GrayImage) -> Result<Option<AmcFrameResult>, AmcError> {
        Ok(Some(self.try_process(frame)?))
    }

    fn finish(&mut self) -> Option<AmcFrameResult> {
        None
    }

    fn stats(&self) -> ExecStats {
        AmcExecutor::stats(self)
    }

    fn reset(&mut self) {
        AmcExecutor::reset(self)
    }
}

/// A motion-estimation request: the frame to match, plus the new key-frame
/// pixels when the previous frame's decision refreshed them. Frames are
/// `Arc`-shared with the executor's own pending slot, so a request is two
/// pointer copies — no pixel copies cross the channel.
struct EstimateRequest {
    new_key: Option<Arc<GrayImage>>,
    frame: Arc<GrayImage>,
}

/// The streaming pipelined executor: an [`AmcExecutor`] whose RFBME stage
/// runs one frame ahead on a worker thread. See the [module docs](self) for
/// the hand-off protocol and the bit-identity argument.
pub struct PipelinedExecutor<'n> {
    amc: AmcExecutor<'n>,
    to_worker: Option<SyncSender<EstimateRequest>>,
    from_worker: Receiver<RfbmeResult>,
    worker: Option<JoinHandle<()>>,
    /// The frame accepted by the last `push`, not yet executed (shared
    /// with the estimate request the worker holds for it).
    pending: Option<Arc<GrayImage>>,
    /// Whether the worker owes us an estimate for `pending`.
    in_flight: bool,
}

impl<'n> PipelinedExecutor<'n> {
    /// Wraps a (fresh or mid-stream) serial executor, spawning the RFBME
    /// worker thread.
    pub fn new(amc: AmcExecutor<'n>) -> Self {
        let rfbme: Rfbme = amc.rfbme();
        let (to_worker, request_rx) = sync_channel::<EstimateRequest>(1);
        let (result_tx, from_worker) = sync_channel::<RfbmeResult>(1);
        let worker = std::thread::Builder::new()
            .name("rfbme-worker".into())
            .spawn(move || {
                let mut key: Option<Arc<GrayImage>> = None;
                // One scratch for the thread's lifetime: steady-state
                // estimation reallocates nothing across frames (scratch
                // contents never affect results — see `RfbmeScratch`).
                let mut scratch = RfbmeScratch::new();
                while let Ok(req) = request_rx.recv() {
                    if let Some(k) = req.new_key {
                        key = Some(k);
                    }
                    let key = key
                        .as_ref()
                        .expect("estimate requested before any key frame");
                    if result_tx
                        .send(rfbme.estimate_with(key, &req.frame, &mut scratch))
                        .is_err()
                    {
                        break;
                    }
                }
            })
            .expect("failed to spawn rfbme-worker thread");
        Self {
            amc,
            to_worker: Some(to_worker),
            from_worker,
            worker: Some(worker),
            pending: None,
            in_flight: false,
        }
    }

    /// The wrapped serial executor (e.g. for `target()` / `rf_geometry()`).
    ///
    /// Note that [`PipelinedExecutor::stats`] lag the pushed frames by one:
    /// the latest frame is only counted once its successor (or a flush)
    /// triggers its execution.
    pub fn inner(&self) -> &AmcExecutor<'n> {
        &self.amc
    }

    /// Accepts the next frame of the stream, returning the completed result
    /// of the *previous* frame (`None` on the first push after creation,
    /// [`PipelinedExecutor::flush`], or [`PipelinedExecutor::reset`]).
    ///
    /// The frame's pixels are copied exactly once, into an [`Arc`] shared
    /// between the pending slot and the worker's estimate request.
    pub fn push(&mut self, frame: &GrayImage) -> Option<AmcFrameResult> {
        let frame = Arc::new(frame.clone());
        match self.pending.take() {
            None => {
                // Nothing to execute yet. If key state already exists (a
                // push after flush), start this frame's estimate now.
                if let Some(key) = self.amc.key_image() {
                    let key = Arc::new(key.clone());
                    self.send(EstimateRequest {
                        new_key: Some(key),
                        frame: Arc::clone(&frame),
                    });
                    self.in_flight = true;
                } else {
                    self.in_flight = false;
                }
                self.pending = Some(frame);
                None
            }
            Some(prev) => {
                let motion = self.take_motion();
                let sender = self.to_worker.as_ref().expect("worker channel open");
                let result = self
                    .amc
                    .process_with_motion_hook(prev.as_ref(), motion, |kind| {
                        // The key image is final here: `prev` itself on a
                        // key frame, unchanged otherwise. Dispatch the next
                        // estimate before the CNN work below overlaps it.
                        let new_key = (kind == FrameKind::Key).then(|| Arc::clone(&prev));
                        sender
                            .send(EstimateRequest {
                                new_key,
                                frame: Arc::clone(&frame),
                            })
                            .expect("rfbme-worker thread died");
                    });
                self.in_flight = true;
                self.pending = Some(frame);
                Some(result)
            }
        }
    }

    /// Executes and returns the last pushed frame's result, emptying the
    /// pipeline (`None` if no frame is pending).
    pub fn flush(&mut self) -> Option<AmcFrameResult> {
        let prev = self.pending.take()?;
        let motion = self.take_motion();
        Some(self.amc.process_with_motion(prev.as_ref(), motion))
    }

    fn take_motion(&mut self) -> Option<RfbmeResult> {
        if !self.in_flight {
            return None;
        }
        self.in_flight = false;
        Some(self.from_worker.recv().expect("rfbme-worker thread died"))
    }

    fn send(&self, req: EstimateRequest) {
        self.to_worker
            .as_ref()
            .expect("worker channel open")
            .send(req)
            .expect("rfbme-worker thread died");
    }
}

impl FrameExecutor for PipelinedExecutor<'_> {
    fn name(&self) -> &'static str {
        "pipelined"
    }

    fn push_frame(&mut self, frame: &GrayImage) -> Result<Option<AmcFrameResult>, AmcError> {
        Ok(self.push(frame))
    }

    fn finish(&mut self) -> Option<AmcFrameResult> {
        self.flush()
    }

    fn stats(&self) -> ExecStats {
        self.amc.stats()
    }

    fn reset(&mut self) {
        // Discard any in-flight estimate and pending frame, then drop the
        // stored key state like the serial executor.
        let _ = self.take_motion();
        self.pending = None;
        self.amc.reset();
    }
}

impl std::fmt::Debug for PipelinedExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PipelinedExecutor({:?}, pending={}, in_flight={})",
            self.amc,
            self.pending.is_some(),
            self.in_flight
        )
    }
}

impl Drop for PipelinedExecutor<'_> {
    fn drop(&mut self) {
        // Closing the request channel ends the worker's recv loop; its
        // result channel has capacity for the one estimate possibly in
        // flight, so it can never block on the way out.
        self.to_worker.take();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AmcConfig;
    use crate::policy::PolicyConfig;
    use eva2_cnn::zoo;

    fn clip(n: usize) -> Vec<GrayImage> {
        (0..n)
            .map(|t| {
                GrayImage::from_fn(48, 48, |y, x| {
                    let xs = (x + t) as f32;
                    (120.0 + 45.0 * ((y as f32 * 0.31).sin() + (xs * 0.22).cos())) as u8
                })
            })
            .collect()
    }

    fn exec_pair(
        config: AmcConfig,
        net: &eva2_cnn::network::Network,
    ) -> (AmcExecutor<'_>, PipelinedExecutor<'_>) {
        (
            AmcExecutor::try_new(net, config).unwrap(),
            PipelinedExecutor::new(AmcExecutor::try_new(net, config).unwrap()),
        )
    }

    fn lenient() -> AmcConfig {
        AmcConfig {
            policy: PolicyConfig::BlockError {
                threshold: f32::INFINITY,
                max_gap: usize::MAX,
            },
            ..Default::default()
        }
    }

    #[test]
    fn push_returns_previous_frame_with_one_frame_latency() {
        let z = zoo::tiny_fasterm(0);
        let mut pipe = PipelinedExecutor::new(AmcExecutor::try_new(&z.network, lenient()).unwrap());
        let frames = clip(3);
        assert!(pipe.push(&frames[0]).is_none());
        let r0 = pipe.push(&frames[1]).expect("frame 0 completes");
        assert!(r0.is_key);
        let r1 = pipe.push(&frames[2]).expect("frame 1 completes");
        assert!(!r1.is_key);
        let r2 = pipe.flush().expect("frame 2 completes");
        assert!(!r2.is_key);
        assert!(pipe.flush().is_none(), "pipeline already drained");
        assert_eq!(pipe.stats().frames, 3);
    }

    #[test]
    fn pipelined_matches_serial_bit_for_bit() {
        let z = zoo::tiny_fasterm(2);
        let (mut serial, mut pipe) = exec_pair(AmcConfig::default(), &z.network);
        let frames = clip(8);
        let a = FrameExecutor::process_clip(&mut serial, &frames).expect("clean clip serves");
        let b = FrameExecutor::process_clip(&mut pipe, &frames).expect("clean clip serves");
        assert_eq!(a.len(), b.len());
        for (t, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.is_key, y.is_key, "frame {t} kind");
            assert_eq!(
                x.output.as_slice(),
                y.output.as_slice(),
                "frame {t} output bits"
            );
            assert_eq!(x.rfbme_ops, y.rfbme_ops, "frame {t} rfbme ops");
        }
        assert_eq!(serial.stats(), FrameExecutor::stats(&pipe));
    }

    #[test]
    fn state_persists_across_clips_and_reset_forces_key() {
        let z = zoo::tiny_fasterm(0);
        let mut pipe = PipelinedExecutor::new(AmcExecutor::try_new(&z.network, lenient()).unwrap());
        let frames = clip(4);
        let first = FrameExecutor::process_clip(&mut pipe, &frames).expect("clean clip serves");
        assert_eq!(
            first.iter().filter(|r| r.is_key).count(),
            1,
            "one key frame in the first clip"
        );
        // A second clip of the same scene continues predicting.
        let second = FrameExecutor::process_clip(&mut pipe, &frames).expect("clean clip serves");
        assert!(second.iter().all(|r| !r.is_key));
        FrameExecutor::reset(&mut pipe);
        let third =
            FrameExecutor::process_clip(&mut pipe, &frames[..1]).expect("clean clip serves");
        assert!(third[0].is_key, "reset forces a key frame");
    }

    #[test]
    fn forced_key_frames_refresh_the_worker_key_copy() {
        // StaticRate(2) alternates key/predicted; every key frame must
        // update the worker's key image or subsequent estimates drift.
        let z = zoo::tiny_fasterm(1);
        let config = AmcConfig {
            policy: PolicyConfig::StaticRate { period: 2 },
            ..Default::default()
        };
        let (mut serial, mut pipe) = exec_pair(config, &z.network);
        let frames = clip(7);
        let a = FrameExecutor::process_clip(&mut serial, &frames).expect("clean clip serves");
        let b = FrameExecutor::process_clip(&mut pipe, &frames).expect("clean clip serves");
        let kinds: Vec<bool> = a.iter().map(|r| r.is_key).collect();
        assert_eq!(kinds, vec![true, false, true, false, true, false, true]);
        for (t, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.is_key, y.is_key, "frame {t}");
            assert_eq!(x.output.as_slice(), y.output.as_slice(), "frame {t}");
        }
    }

    #[test]
    fn executors_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<AmcExecutor<'static>>();
        assert_send::<PipelinedExecutor<'static>>();
        assert_send::<AmcFrameResult>();
    }
}
