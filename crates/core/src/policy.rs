//! Key-frame selection policies.
//!
//! "The primary control that AMC has over vision accuracy and execution
//! efficiency is the allocation of key frames" (§II-C4). The paper considers
//! a static rate and two adaptive features measurable from RFBME's own
//! bookkeeping:
//!
//! * **Pixel compensation error** — the aggregate block-match error; high
//!   error means motion estimation failed to explain the frame (occlusion,
//!   lighting, new objects), so spend a key frame. Chosen for the hardware
//!   because "block errors are byproducts of RFBME" (§IV-E5).
//! * **Total motion magnitude** — the summed length of the motion vectors;
//!   large motion accumulates more warp error.

use eva2_motion::field::VectorField;
use serde::{Deserialize, Serialize};

/// Per-frame features available to a key-frame policy, produced by the
/// motion-estimation stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameMetrics {
    /// Sum of per-receptive-field minimum block errors (RFBME bookkeeping).
    pub block_error: u64,
    /// `block_error` normalised by the number of compared pixels, making
    /// thresholds resolution-independent.
    pub block_error_per_pixel: f32,
    /// Sum of motion-vector magnitudes (pixels).
    pub motion_magnitude: f32,
    /// Frames elapsed since the last key frame (≥ 1 when deciding).
    pub frames_since_key: usize,
}

impl FrameMetrics {
    /// Builds metrics from an RFBME result. The per-pixel error normalises
    /// by the pixels actually compared (receptive fields overlap, so this
    /// exceeds the frame area), making thresholds intensity-scaled and
    /// resolution-independent.
    pub fn from_rfbme(result: &eva2_motion::rfbme::RfbmeResult, frames_since_key: usize) -> Self {
        let per_pixel = result.total_error as f32 / result.total_pixels.max(1) as f32;
        Self {
            block_error: result.total_error,
            block_error_per_pixel: per_pixel,
            motion_magnitude: result.field.magnitude_sum(),
            frames_since_key,
        }
    }

    /// Builds metrics directly from a vector field and error total (for
    /// non-RFBME estimators).
    pub fn from_field(field: &VectorField, block_error: u64, frames_since_key: usize) -> Self {
        let cells = (field.grid_h() * field.grid_w()).max(1);
        let cell = field.cell().max(1);
        Self {
            block_error,
            block_error_per_pixel: block_error as f32 / (cells * cell * cell) as f32,
            motion_magnitude: field.magnitude_sum(),
            frames_since_key,
        }
    }
}

/// A key-frame decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Run the full CNN and refresh the stored state.
    Key,
    /// Warp the stored activation and run only the suffix.
    Predicted,
}

/// Decides, per frame, whether to spend a key frame.
///
/// Implementations may keep internal state (e.g. hysteresis), but must
/// mutate it only in [`KeyFramePolicy::note_key_frame`]:
/// [`KeyFramePolicy::decide`] is called once per non-initial frame the
/// serving engine *classifies*, and a classified frame may still be shed
/// by backpressure before it executes (see
/// [`serve`](crate::serve#lifecycle--failure-modes)) — a `decide` with
/// side effects would observe frames that never ran. All shipped policies
/// are pure functions of the metrics.
pub trait KeyFramePolicy: std::fmt::Debug + Send {
    /// Chooses the frame kind given the motion metrics. Must be
    /// side-effect-free (the call may be speculative; see the trait docs).
    fn decide(&mut self, metrics: &FrameMetrics) -> FrameKind;

    /// Notifies the policy that a key frame was executed.
    fn note_key_frame(&mut self) {}

    /// Policy name for reports.
    fn name(&self) -> &str;
}

/// Every `n`-th frame is a key frame; the rest are predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticRate {
    /// Key-frame period (1 = every frame is a key frame).
    pub period: usize,
}

impl KeyFramePolicy for StaticRate {
    fn decide(&mut self, metrics: &FrameMetrics) -> FrameKind {
        if metrics.frames_since_key >= self.period.max(1) {
            FrameKind::Key
        } else {
            FrameKind::Predicted
        }
    }

    fn name(&self) -> &str {
        "static-rate"
    }
}

/// Always run the full CNN (the paper's `orig` baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AlwaysKey;

impl KeyFramePolicy for AlwaysKey {
    fn decide(&mut self, _metrics: &FrameMetrics) -> FrameKind {
        FrameKind::Key
    }

    fn name(&self) -> &str {
        "always-key"
    }
}

/// Adaptive policy on the pixel compensation error: a key frame whenever the
/// normalised block-match error exceeds `threshold`, or `max_gap` predicted
/// frames have accumulated (a safety net against unbounded drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockErrorAdaptive {
    /// Per-pixel error threshold (intensity units).
    pub threshold: f32,
    /// Maximum consecutive predicted frames before forcing a key frame.
    pub max_gap: usize,
}

impl KeyFramePolicy for BlockErrorAdaptive {
    fn decide(&mut self, metrics: &FrameMetrics) -> FrameKind {
        if metrics.block_error_per_pixel > self.threshold
            || metrics.frames_since_key >= self.max_gap.max(1)
        {
            FrameKind::Key
        } else {
            FrameKind::Predicted
        }
    }

    fn name(&self) -> &str {
        "block-error"
    }
}

/// Adaptive policy on the total motion magnitude: a key frame whenever the
/// summed vector magnitude exceeds `threshold` pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionMagnitudeAdaptive {
    /// Motion magnitude threshold in summed pixels.
    pub threshold: f32,
    /// Maximum consecutive predicted frames before forcing a key frame.
    pub max_gap: usize,
}

impl KeyFramePolicy for MotionMagnitudeAdaptive {
    fn decide(&mut self, metrics: &FrameMetrics) -> FrameKind {
        if metrics.motion_magnitude > self.threshold
            || metrics.frames_since_key >= self.max_gap.max(1)
        {
            FrameKind::Key
        } else {
            FrameKind::Predicted
        }
    }

    fn name(&self) -> &str {
        "motion-magnitude"
    }
}

/// Serializable policy configuration (for experiment configs / builders).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// See [`AlwaysKey`].
    AlwaysKey,
    /// See [`StaticRate`].
    StaticRate {
        /// Key-frame period.
        period: usize,
    },
    /// See [`BlockErrorAdaptive`].
    BlockError {
        /// Per-pixel error threshold.
        threshold: f32,
        /// Forced key-frame gap.
        max_gap: usize,
    },
    /// See [`MotionMagnitudeAdaptive`].
    MotionMagnitude {
        /// Summed-magnitude threshold.
        threshold: f32,
        /// Forced key-frame gap.
        max_gap: usize,
    },
}

impl PolicyConfig {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn KeyFramePolicy> {
        match self {
            PolicyConfig::AlwaysKey => Box::new(AlwaysKey),
            PolicyConfig::StaticRate { period } => Box::new(StaticRate { period }),
            PolicyConfig::BlockError { threshold, max_gap } => {
                Box::new(BlockErrorAdaptive { threshold, max_gap })
            }
            PolicyConfig::MotionMagnitude { threshold, max_gap } => {
                Box::new(MotionMagnitudeAdaptive { threshold, max_gap })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(err_pp: f32, mag: f32, since: usize) -> FrameMetrics {
        FrameMetrics {
            block_error: (err_pp * 1000.0) as u64,
            block_error_per_pixel: err_pp,
            motion_magnitude: mag,
            frames_since_key: since,
        }
    }

    #[test]
    fn static_rate_fires_on_period() {
        let mut p = StaticRate { period: 3 };
        assert_eq!(p.decide(&metrics(0.0, 0.0, 1)), FrameKind::Predicted);
        assert_eq!(p.decide(&metrics(0.0, 0.0, 2)), FrameKind::Predicted);
        assert_eq!(p.decide(&metrics(100.0, 100.0, 3)), FrameKind::Key);
    }

    #[test]
    fn always_key_ignores_metrics() {
        let mut p = AlwaysKey;
        assert_eq!(p.decide(&metrics(0.0, 0.0, 1)), FrameKind::Key);
    }

    #[test]
    fn block_error_thresholds() {
        let mut p = BlockErrorAdaptive {
            threshold: 2.0,
            max_gap: 100,
        };
        assert_eq!(p.decide(&metrics(1.9, 50.0, 1)), FrameKind::Predicted);
        assert_eq!(p.decide(&metrics(2.1, 0.0, 1)), FrameKind::Key);
    }

    #[test]
    fn block_error_max_gap_forces_key() {
        let mut p = BlockErrorAdaptive {
            threshold: 1e9,
            max_gap: 5,
        };
        assert_eq!(p.decide(&metrics(0.0, 0.0, 4)), FrameKind::Predicted);
        assert_eq!(p.decide(&metrics(0.0, 0.0, 5)), FrameKind::Key);
    }

    #[test]
    fn motion_magnitude_thresholds() {
        let mut p = MotionMagnitudeAdaptive {
            threshold: 10.0,
            max_gap: 100,
        };
        assert_eq!(p.decide(&metrics(5.0, 9.0, 1)), FrameKind::Predicted);
        assert_eq!(p.decide(&metrics(0.0, 11.0, 1)), FrameKind::Key);
    }

    #[test]
    fn config_builds_matching_policies() {
        assert_eq!(PolicyConfig::AlwaysKey.build().name(), "always-key");
        assert_eq!(
            PolicyConfig::StaticRate { period: 2 }.build().name(),
            "static-rate"
        );
        assert_eq!(
            PolicyConfig::BlockError {
                threshold: 1.0,
                max_gap: 10
            }
            .build()
            .name(),
            "block-error"
        );
        assert_eq!(
            PolicyConfig::MotionMagnitude {
                threshold: 1.0,
                max_gap: 10
            }
            .build()
            .name(),
            "motion-magnitude"
        );
    }

    #[test]
    fn metrics_from_field_normalises() {
        use eva2_motion::field::{MotionVector, VectorField};
        let f = VectorField::uniform(2, 2, 4, MotionVector::new(3.0, 4.0));
        let m = FrameMetrics::from_field(&f, 640, 2);
        assert_eq!(m.motion_magnitude, 20.0);
        assert_eq!(m.block_error, 640);
        // 4 cells × 16 px/cell = 64 px → 10 per pixel.
        assert!((m.block_error_per_pixel - 10.0).abs() < 1e-6);
        assert_eq!(m.frames_since_key, 2);
    }
}
