//! Target layer selection.
//!
//! "To apply AMC to a given CNN, the system needs to choose a target layer.
//! This choice controls both AMC's potential efficiency benefits and its
//! error rate" (§II-C5). The paper evaluates an *early* target (after the
//! first pooling layer) and a *late* target (the last spatial layer) and
//! adopts the late one statically.

use crate::error::AmcError;
use eva2_cnn::network::Network;
use eva2_motion::rfbme::RfGeometry;
use serde::{Deserialize, Serialize};

/// How the AMC target layer is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TargetSelection {
    /// After the CNN's first pooling layer (§IV-E3's "early target").
    Early,
    /// The last spatial layer — the paper's default.
    #[default]
    Late,
    /// An explicit layer index (must be spatial and within the spatial
    /// prefix).
    Index(usize),
}

impl TargetSelection {
    /// Resolves the selection to a concrete layer index for `net`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`AmcError`] when the network has no spatial prefix
    /// ([`AmcError::NoSpatialPrefix`]), an early target is requested with
    /// no pooling layer ([`AmcError::NoPoolingLayer`]), or the explicit
    /// index lies after the last spatial layer
    /// ([`AmcError::TargetOutsidePrefix`]).
    pub fn resolve(self, net: &Network) -> Result<usize, AmcError> {
        let last = net
            .last_spatial_layer()
            .ok_or_else(|| AmcError::NoSpatialPrefix {
                network: net.name().to_string(),
            })?;
        match self {
            TargetSelection::Late => Ok(last),
            TargetSelection::Early => {
                net.first_pool_layer()
                    .ok_or_else(|| AmcError::NoPoolingLayer {
                        network: net.name().to_string(),
                    })
            }
            TargetSelection::Index(i) => {
                if i > last {
                    Err(AmcError::TargetOutsidePrefix {
                        index: i,
                        last_spatial: last,
                    })
                } else {
                    Ok(i)
                }
            }
        }
    }

    /// Resolves and returns the receptive-field geometry RFBME needs.
    ///
    /// # Errors
    ///
    /// Propagates [`TargetSelection::resolve`]'s errors.
    pub fn geometry(self, net: &Network) -> Result<(usize, RfGeometry), AmcError> {
        let target = self.resolve(net)?;
        let rf = net.receptive_field(target);
        Ok((
            target,
            RfGeometry {
                size: rf.size,
                stride: rf.stride,
                padding: rf.padding,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva2_cnn::zoo;

    #[test]
    fn late_resolves_to_last_spatial() {
        let z = zoo::tiny_faster16(0);
        assert_eq!(TargetSelection::Late.resolve(&z.network), Ok(z.late_target));
    }

    #[test]
    fn early_resolves_to_first_pool() {
        let z = zoo::tiny_faster16(0);
        assert_eq!(
            TargetSelection::Early.resolve(&z.network),
            Ok(z.early_target)
        );
    }

    #[test]
    fn explicit_index_validated() {
        let z = zoo::tiny_alexnet(0);
        assert_eq!(TargetSelection::Index(5).resolve(&z.network), Ok(5));
        assert!(TargetSelection::Index(100).resolve(&z.network).is_err());
        // fc1 at index 9 is outside the spatial prefix.
        assert!(TargetSelection::Index(9).resolve(&z.network).is_err());
    }

    #[test]
    fn geometry_matches_network_receptive_field() {
        let z = zoo::tiny_fasterm(0);
        let (target, rf) = TargetSelection::Late.geometry(&z.network).expect("ok");
        let expect = z.network.receptive_field(target);
        assert_eq!(rf.size, expect.size);
        assert_eq!(rf.stride, expect.stride);
        assert_eq!(rf.padding, expect.padding);
        assert_eq!(rf.stride, 8);
    }

    #[test]
    fn default_is_late() {
        assert_eq!(TargetSelection::default(), TargetSelection::Late);
    }
}
