//! Activation motion compensation (AMC) — the EVA² paper's core contribution.
//!
//! AMC processes live video as a mixture of **key frames** (full, precise
//! CNN execution) and **predicted frames** (approximately incremental
//! execution): on a predicted frame it estimates motion between the stored
//! key frame and the new input, *warps* the stored target-layer activation
//! by the scaled vector field, and runs only the CNN suffix (Fig 1 of the
//! paper).
//!
//! Module map (paper section → module):
//!
//! * §II-C2 / §III-B compressed activation storage → [`sparse`]
//!   (run-length encoding plus the 4-lane sparsity decoder model of Fig 10).
//! * §II-C3 / §III-B interpolated warping → [`warp`] (float reference and a
//!   bit-accurate Q8.8 model of the Fig 11 bilinear interpolator).
//! * §II-C4 key frame selection → [`policy`] (static rate, pixel
//!   compensation error, total motion magnitude).
//! * §II-C5 target layer choice → [`target`].
//! * §II-A the full pipeline → [`executor`] ([`AmcExecutor`]).
//! * §III / Fig 6's decoupled EVA² unit, as a software pipeline →
//!   [`pipeline`] ([`pipeline::PipelinedExecutor`] overlaps the next
//!   frame's RFBME with the current frame's CNN work on a worker thread).
//!
//! # Example
//!
//! ```
//! use eva2_core::executor::{AmcConfig, AmcExecutor};
//! use eva2_cnn::zoo;
//! use eva2_tensor::GrayImage;
//!
//! let zoo_net = zoo::tiny_fasterm(7);
//! let mut amc = AmcExecutor::new(&zoo_net.network, AmcConfig::default());
//! let frame = GrayImage::from_fn(48, 48, |y, x| {
//!     (120.0 + 60.0 * ((y as f32) * 0.3).sin() * ((x as f32) * 0.2).cos()) as u8
//! });
//! let first = amc.process(&frame);
//! assert!(first.is_key, "the first frame is always a key frame");
//! let second = amc.process(&frame);
//! // An unchanged scene with the default policy yields a cheap predicted frame.
//! assert!(!second.is_key);
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod pipeline;
pub mod policy;
pub mod sparse;
pub mod target;
pub mod warp;

pub use executor::{AmcConfig, AmcExecutor, AmcFrameResult, WarpMode};
pub use pipeline::{FrameExecutor, PipelinedExecutor};
pub use policy::{FrameMetrics, KeyFramePolicy};
pub use sparse::RleActivation;
pub use target::TargetSelection;
