//! Activation motion compensation (AMC) — the EVA² paper's core contribution.
//!
//! AMC processes live video as a mixture of **key frames** (full, precise
//! CNN execution) and **predicted frames** (approximately incremental
//! execution): on a predicted frame it estimates motion between the stored
//! key frame and the new input, *warps* the stored target-layer activation
//! by the scaled vector field, and runs only the CNN suffix (Fig 1 of the
//! paper).
//!
//! Module map (paper section → module):
//!
//! * §II-C2 / §III-B compressed activation storage → [`sparse`]
//!   (run-length encoding plus the 4-lane sparsity decoder model of Fig 10).
//! * §II-C3 / §III-B interpolated warping → [`warp`] (float reference and a
//!   bit-accurate Q8.8 model of the Fig 11 bilinear interpolator).
//! * §II-C4 key frame selection → [`policy`] (static rate, pixel
//!   compensation error, total motion magnitude).
//! * §II-C5 target layer choice → [`target`].
//! * §II-A the full pipeline → [`executor`] ([`AmcExecutor`], a
//!   single-stream wrapper).
//! * §III / Fig 6's decoupled EVA² unit, as a software pipeline →
//!   [`pipeline`] ([`pipeline::PipelinedExecutor`] overlaps the next
//!   frame's RFBME with the current frame's CNN work on a worker thread).
//! * Multi-stream serving → [`serve`] ([`serve::Engine`] owns the network
//!   and shared scratch; each video stream is a [`serve::StreamSession`],
//!   and key frames from independent streams share one batched
//!   im2col + packed-GEMM prefix pass).
//!
//! Configuration errors are typed ([`AmcError`]); build configurations
//! through [`executor::AmcConfig::builder`].
//!
//! # Example
//!
//! ```
//! use eva2_core::executor::AmcConfig;
//! use eva2_core::serve::Engine;
//! use eva2_cnn::zoo;
//! use eva2_tensor::GrayImage;
//! use std::sync::Arc;
//!
//! let net = Arc::new(zoo::tiny_fasterm(7).network);
//! let config = AmcConfig::builder().build().expect("defaults are valid");
//! let mut engine = Engine::new(net, config).expect("resolvable target");
//! let mut stream = engine.open_session().expect("engine has capacity");
//! let frame = GrayImage::from_fn(48, 48, |y, x| {
//!     (120.0 + 60.0 * ((y as f32) * 0.3).sin() * ((x as f32) * 0.2).cos()) as u8
//! });
//! let first = engine.process(&mut stream, &frame).unwrap();
//! assert!(first.is_key, "a stream's first frame is always a key frame");
//! let second = engine.process(&mut stream, &frame).unwrap();
//! // An unchanged scene with the default policy yields a cheap predicted frame.
//! assert!(!second.is_key);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod executor;
pub mod pipeline;
pub mod policy;
pub mod serve;
pub mod sparse;
pub mod target;
pub mod warp;

pub use error::AmcError;
pub use executor::{AmcConfig, AmcConfigBuilder, AmcExecutor, AmcFrameResult, WarpMode};
pub use pipeline::{FrameExecutor, PipelinedExecutor};
pub use policy::{FrameMetrics, KeyFramePolicy};
pub use serve::{Engine, EngineLimits, StreamSession};
pub use sparse::RleActivation;
pub use target::TargetSelection;
