//! Sparse activation store benchmarks: RLE encode/decode at the sparsity
//! levels the paper reports (≈80% zeros after ReLU) and the 4-lane decoder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eva2_cnn::zoo;
use eva2_core::sparse::{LaneGroup, RleActivation};
use eva2_tensor::gemm::GemmScratch;
use eva2_tensor::{Shape3, Tensor3};
use std::hint::black_box;

fn activation(sparsity: f32) -> Tensor3 {
    Tensor3::from_fn(Shape3::new(32, 12, 12), |c, y, x| {
        let i = (c * 131 + y * 17 + x * 3) % 1000;
        if (i as f32) < sparsity * 1000.0 {
            0.0
        } else {
            (i as f32) * 0.01
        }
    })
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rle");
    for sparsity in [0.5f32, 0.8, 0.95] {
        let act = activation(sparsity);
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{:.0}pct", sparsity * 100.0)),
            &act,
            |b, act| b.iter(|| black_box(RleActivation::encode(act, 0.0))),
        );
        let rle = RleActivation::encode(&act, 0.0);
        group.bench_with_input(
            BenchmarkId::new("decode", format!("{:.0}pct", sparsity * 100.0)),
            &rle,
            |b, rle| b.iter(|| black_box(rle.decode())),
        );
    }
    group.finish();
}

fn bench_lane_group(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsity_decoder_lanes");
    for sparsity in [0.5f32, 0.9] {
        let act = activation(sparsity);
        let rle = RleActivation::encode(&act, 0.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct_zero", sparsity * 100.0)),
            &rle,
            |b, rle| {
                b.iter(|| {
                    let mut lanes = LaneGroup::new([
                        rle.channel_stream(0),
                        rle.channel_stream(1),
                        rle.channel_stream(2),
                        rle.channel_stream(3),
                    ]);
                    let mut n = 0u64;
                    while let Some((vals, _)) = lanes.next_group() {
                        n += vals.iter().filter(|v| !v.is_zero()).count() as u64;
                    }
                    black_box((n, lanes.cycles))
                })
            },
        );
    }
    group.finish();
}

/// Sparse-aware suffix vs densify-then-dense execution from the RLE store.
///
/// `densify` is the pre-engine behaviour (`rle.decode()` then a dense
/// suffix); `sparse` feeds the first suffix layer straight from the
/// non-zero runs. The acceptance bar: `sparse` wins at ≥ 50% sparsity.
fn bench_suffix_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_from_rle");
    group.sample_size(20);
    let z = zoo::tiny_fasterm(0);
    let target = z.late_target;
    let shape = z.network.shape_after(target);
    for sparsity in [0.5f32, 0.8, 0.95] {
        let act = Tensor3::from_fn(shape, |c, y, x| {
            let i = (c * 131 + y * 17 + x * 3) % 1000;
            if (i as f32) < sparsity * 1000.0 {
                0.0
            } else {
                (i as f32) * 0.004
            }
        });
        let rle = RleActivation::encode(&act, 0.0);
        let label = format!("{:.0}pct", sparsity * 100.0);
        group.bench_with_input(BenchmarkId::new("densify", &label), &rle, |b, rle| {
            b.iter(|| {
                let dense = rle.decode();
                black_box(z.network.forward_suffix(&dense, target))
            })
        });
        let mut scratch = GemmScratch::new();
        group.bench_with_input(BenchmarkId::new("sparse", &label), &rle, |b, rle| {
            b.iter(|| {
                let sparse = rle.to_sparse();
                black_box(
                    z.network
                        .forward_suffix_sparse(&sparse, target, &mut scratch),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_lane_group,
    bench_suffix_paths
);
criterion_main!(benches);
