//! CNN execution benchmarks: the prefix/suffix cost asymmetry AMC exploits
//! (Fig 13's `orig` vs `pred` bars at software scale) for all three
//! workload analogues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eva2_cnn::zoo::{self, Workload};
use eva2_tensor::Tensor3;
use std::hint::black_box;

fn bench_prefix_vs_suffix(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_split");
    group.sample_size(20);
    for workload in Workload::ALL {
        let z = workload.build(0);
        let input = Tensor3::from_fn(z.input_shape(), |_, y, x| ((y * 13 + x) % 97) as f32 / 97.0);
        let target = z.late_target;
        let act = z.network.forward_prefix(&input, target);
        group.bench_with_input(
            BenchmarkId::new("full", workload.name()),
            &input,
            |b, input| b.iter(|| black_box(z.network.forward(input))),
        );
        group.bench_with_input(
            BenchmarkId::new("prefix", workload.name()),
            &input,
            |b, input| b.iter(|| black_box(z.network.forward_prefix(input, target))),
        );
        group.bench_with_input(
            BenchmarkId::new("suffix", workload.name()),
            &act,
            |b, act| b.iter(|| black_box(z.network.forward_suffix(act, target))),
        );
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);
    let mut z = zoo::tiny_fasterm(0);
    let input = Tensor3::from_fn(z.input_shape(), |_, y, x| ((y + x) % 31) as f32 / 31.0);
    group.bench_function("fasterm_forward_backward", |b| {
        b.iter(|| {
            let acts = z.network.forward_collect(&input);
            let out = acts.last().unwrap();
            let grad = out.map(|v| v * 2.0);
            z.network.backward(&acts, grad);
            z.network.apply_grads(0.0, 1); // lr 0 keeps weights fixed
            black_box(())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prefix_vs_suffix, bench_training_step);
criterion_main!(benches);
