//! CNN execution benchmarks: the prefix/suffix cost asymmetry AMC exploits
//! (Fig 13's `orig` vs `pred` bars at software scale) for all three
//! workload analogues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eva2_cnn::layer::{Conv2d, Layer};
use eva2_cnn::zoo::{self, Workload};
use eva2_tensor::gemm::{gemm_nn, gemm_nn_axpy, GemmScratch};
use eva2_tensor::{Shape3, Tensor3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Register-blocked micro-kernel vs the PR-1 AXPY-panel kernel on the
/// product the conv benchmark lowers to (M=32, N=1024, K=144 — the
/// key-frame prefix critical-path shape). The trajectory tracks the same
/// pair as the `gemm_micro_over_axpy` ratio.
fn bench_gemm_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_micro");
    group.sample_size(20);
    let (m, n, k) = (32usize, 1024usize, 144usize);
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 17) % 23) as f32 * 0.1 - 1.1)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 13) % 19) as f32 * 0.1 - 0.9)
        .collect();
    let mut out = vec![0.0f32; m * n];
    group.bench_function("microkernel", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            gemm_nn(m, n, k, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        })
    });
    group.bench_function("axpy", |bch| {
        bch.iter(|| {
            out.fill(0.0);
            gemm_nn_axpy(m, n, k, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        })
    });
    group.finish();
}

/// Naive-vs-GEMM conv forward on a representative mid-network layer
/// (16→32 channels, 3×3, 32×32 spatial). The acceptance bar for the
/// convolution engine is a ≥ 5× GEMM speedup here (release build).
fn bench_conv_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_paths");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let conv = Conv2d::new("bench", 16, 32, 3, 1, 1, &mut rng);
    let input = Tensor3::from_fn(Shape3::new(16, 32, 32), |c, y, x| {
        (((c * 31 + y * 7 + x) % 23) as f32 - 11.0) * 0.1
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(conv.forward_naive(&input)))
    });
    group.bench_function("gemm", |b| b.iter(|| black_box(conv.forward(&input))));
    let mut scratch = GemmScratch::new();
    group.bench_function("gemm_scratch", |b| {
        b.iter(|| black_box(conv.forward_scratch(&input, &mut scratch)))
    });
    group.finish();
}

/// Cross-stream batched key-frame prefix (batch 4) vs four single prefix
/// runs — the serving engine's amortization seam. The trajectory tracks
/// the same pair as the `batched_prefix_over_single` ratio.
fn bench_batched_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_prefix");
    group.sample_size(20);
    let z = zoo::tiny_fasterm(0);
    let target = z.late_target;
    let frames: Vec<Tensor3> = (0..4)
        .map(|f| {
            Tensor3::from_fn(z.input_shape(), |_, y, x| {
                ((y * 13 + x * 7 + f * 31) % 97) as f32 / 97.0
            })
        })
        .collect();
    let mut scratch = GemmScratch::new();
    group.bench_function("single_x4", |b| {
        b.iter(|| {
            for frame in &frames {
                black_box(
                    z.network
                        .forward_prefix_scratch(black_box(frame), target, &mut scratch),
                );
            }
        })
    });
    group.bench_function("batched_b4", |b| {
        b.iter(|| {
            black_box(z.network.forward_prefix_batched(
                black_box(frames.clone()),
                target,
                &mut scratch,
            ))
        })
    });
    group.finish();
}

fn bench_prefix_vs_suffix(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_split");
    group.sample_size(20);
    for workload in Workload::ALL {
        let z = workload.build(0);
        let input = Tensor3::from_fn(z.input_shape(), |_, y, x| ((y * 13 + x) % 97) as f32 / 97.0);
        let target = z.late_target;
        let act = z.network.forward_prefix(&input, target);
        group.bench_with_input(
            BenchmarkId::new("full", workload.name()),
            &input,
            |b, input| b.iter(|| black_box(z.network.forward(input))),
        );
        group.bench_with_input(
            BenchmarkId::new("prefix", workload.name()),
            &input,
            |b, input| b.iter(|| black_box(z.network.forward_prefix(input, target))),
        );
        group.bench_with_input(
            BenchmarkId::new("suffix", workload.name()),
            &act,
            |b, act| b.iter(|| black_box(z.network.forward_suffix(act, target))),
        );
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);
    let mut z = zoo::tiny_fasterm(0);
    let input = Tensor3::from_fn(z.input_shape(), |_, y, x| ((y + x) % 31) as f32 / 31.0);
    group.bench_function("fasterm_forward_backward", |b| {
        b.iter(|| {
            let acts = z.network.forward_collect(&input);
            let out = acts.last().unwrap();
            let grad = out.map(|v| v * 2.0);
            z.network.backward(&acts, grad);
            z.network.apply_grads(0.0, 1); // lr 0 keeps weights fixed
            black_box(())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_micro,
    bench_conv_paths,
    bench_batched_prefix,
    bench_prefix_vs_suffix,
    bench_training_step
);
criterion_main!(benches);
