//! End-to-end pipeline benchmarks: key-frame vs predicted-frame cost
//! through the full AMC executor (Fig 1 at software scale), and the
//! delta-network baseline for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use eva2_cnn::delta::DeltaExecutor;
use eva2_cnn::zoo;
use eva2_core::executor::{AmcConfig, AmcExecutor};
use eva2_core::pipeline::{FrameExecutor, PipelinedExecutor};
use eva2_core::policy::PolicyConfig;
use eva2_tensor::GrayImage;
use std::hint::black_box;

fn frame(shift: usize) -> GrayImage {
    GrayImage::from_fn(48, 48, |y, x| {
        (125.0 + 50.0 * ((y as f32 * 0.29).sin() + ((x + shift) as f32 * 0.21).cos())) as u8
    })
}

fn bench_amc_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("amc_pipeline_fasterm");
    group.sample_size(20);
    let z = zoo::tiny_fasterm(0);
    let f0 = frame(0);
    let f1 = frame(1);

    // Key frame: full prefix + suffix + activation store refresh.
    let always_key = AmcConfig {
        policy: PolicyConfig::AlwaysKey,
        ..Default::default()
    };
    group.bench_function("key_frame", |b| {
        let mut amc = AmcExecutor::try_new(&z.network, always_key).unwrap();
        amc.process(&f0);
        b.iter(|| black_box(amc.process(&f1)))
    });

    // Predicted frame: RFBME + warp + sparse-fed suffix only.
    let never_key = AmcConfig {
        policy: PolicyConfig::BlockError {
            threshold: f32::INFINITY,
            max_gap: usize::MAX,
        },
        ..Default::default()
    };
    group.bench_function("predicted_frame", |b| {
        let mut amc = AmcExecutor::try_new(&z.network, never_key).unwrap();
        amc.process(&f0);
        b.iter(|| black_box(amc.process(&f1)))
    });

    // Same predicted frame through the bit-accurate Q8.8 warp datapath.
    let mut fixed = never_key;
    fixed.fixed_point = true;
    group.bench_function("predicted_frame_q88", |b| {
        let mut amc = AmcExecutor::try_new(&z.network, fixed).unwrap();
        amc.process(&f0);
        b.iter(|| black_box(amc.process(&f1)))
    });

    // Memoized predicted frame: suffix fed straight from the RLE store's
    // non-zero runs (no warp, no densify).
    let mut memo = never_key;
    memo.warp = eva2_core::executor::WarpMode::Memoize;
    group.bench_function("predicted_frame_memoize", |b| {
        let mut amc = AmcExecutor::try_new(&z.network, memo).unwrap();
        amc.process(&f0);
        b.iter(|| black_box(amc.process(&f1)))
    });

    // Streaming pipelined executor in steady state: each push returns the
    // previous frame's result while the worker estimates the next frame's
    // motion.
    group.bench_function("predicted_frame_pipelined", |b| {
        let mut pipe = PipelinedExecutor::new(AmcExecutor::try_new(&z.network, never_key).unwrap());
        pipe.push(&f0);
        b.iter(|| black_box(pipe.push(&f1)))
    });

    // The §II delta-network strawman processes every layer every frame.
    group.bench_function("delta_network_frame", |b| {
        let mut delta = DeltaExecutor::new(1e-4);
        delta.process(&z.network, &f0.to_tensor());
        b.iter(|| black_box(delta.process(&z.network, &f1.to_tensor())))
    });
    group.finish();
}

/// Where the overlap actually pays: a mixed key/predicted stream. On a key
/// frame the pipelined executor runs the full CNN while the worker already
/// block-matches the next frame; serially those costs add.
fn bench_pipeline_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_overlap");
    group.sample_size(10);
    let z = zoo::tiny_fasterm(0);
    let clip: Vec<GrayImage> = (0..12).map(frame).collect();
    let config = AmcConfig {
        policy: PolicyConfig::StaticRate { period: 4 },
        ..Default::default()
    };
    group.bench_function("clip12_serial", |b| {
        let mut amc = AmcExecutor::try_new(&z.network, config).unwrap();
        b.iter(|| {
            FrameExecutor::reset(&mut amc);
            black_box(FrameExecutor::process_clip(&mut amc, &clip).expect("clean clip serves"))
        })
    });
    group.bench_function("clip12_pipelined", |b| {
        let mut pipe = PipelinedExecutor::new(AmcExecutor::try_new(&z.network, config).unwrap());
        b.iter(|| {
            FrameExecutor::reset(&mut pipe);
            black_box(FrameExecutor::process_clip(&mut pipe, &clip).expect("clean clip serves"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_amc_frames, bench_pipeline_overlap);
criterion_main!(benches);
