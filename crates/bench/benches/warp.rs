//! Warp-engine benchmarks: bilinear vs nearest interpolation, float
//! reference vs the bit-accurate Q8.8 datapath, dense vs sparse
//! activations (the §V claim that zero skipping cuts compensation cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eva2_core::warp::{warp_activation, warp_activation_fixed};
use eva2_motion::field::{MotionVector, VectorField};
use eva2_tensor::interp::Interpolation;
use eva2_tensor::{Shape3, Tensor3};
use std::hint::black_box;

fn activation(c: usize, hw: usize, sparsity: f32) -> Tensor3 {
    Tensor3::from_fn(Shape3::new(c, hw, hw), |ch, y, x| {
        let i = (ch * 31 + y * 7 + x) % 100;
        if (i as f32) < sparsity * 100.0 {
            0.0
        } else {
            (i as f32) * 0.05 - 1.0
        }
    })
}

fn field(hw: usize) -> VectorField {
    VectorField::from_fn(hw, hw, 8, |y, x| {
        MotionVector::new(((y % 5) as f32 - 2.0) * 1.7, ((x % 3) as f32 - 1.0) * 2.3)
    })
}

fn bench_warp_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_24ch_12x12");
    let act = activation(24, 12, 0.6);
    let f = field(12);
    group.bench_function("bilinear_f32", |b| {
        b.iter(|| black_box(warp_activation(&act, &f, 8, Interpolation::Bilinear)))
    });
    group.bench_function("nearest_f32", |b| {
        b.iter(|| black_box(warp_activation(&act, &f, 8, Interpolation::NearestNeighbor)))
    });
    group.bench_function("bilinear_q88_fixed", |b| {
        b.iter(|| black_box(warp_activation_fixed(&act, &f, 8)))
    });
    group.finish();
}

fn bench_warp_sparsity(c: &mut Criterion) {
    // Zero-skipping in the stats path: sparser activations do less multiply
    // work (the hardware skips the loads entirely).
    let mut group = c.benchmark_group("warp_sparsity");
    for sparsity in [0.0f32, 0.5, 0.9] {
        let act = activation(24, 12, sparsity);
        let f = field(12);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct_zero", sparsity * 100.0)),
            &sparsity,
            |b, _| b.iter(|| black_box(warp_activation_fixed(&act, &f, 8))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_warp_methods, bench_warp_sparsity);
criterion_main!(benches);
