//! The §IV-A claim in wall-clock form: RFBME's tile reuse versus an
//! unoptimized per-receptive-field exhaustive search, and versus the other
//! block-matching organisations and optical-flow baselines of Fig 14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eva2_motion::block::{BlockMatcher, SearchStrategy};
use eva2_motion::hornschunck::HornSchunck;
use eva2_motion::lucas_kanade::LucasKanade;
use eva2_motion::rfbme::{RfGeometry, Rfbme, SearchParams};
use eva2_motion::MotionEstimator;
use eva2_tensor::GrayImage;
use std::hint::black_box;

fn frames(h: usize, w: usize) -> (GrayImage, GrayImage) {
    let key = GrayImage::from_fn(h, w, |y, x| {
        (128.0 + 55.0 * ((y as f32 * 0.31).sin() + (x as f32 * 0.23).cos())) as u8
    });
    let new = key.translate(1, 2, 0);
    (key, new)
}

fn bench_rfbme_vs_unoptimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("motion_estimation");
    for size in [64usize, 128] {
        let (key, new) = frames(size, size);
        let rf = RfGeometry {
            size: 16,
            stride: 8,
            padding: 0,
        };
        let params = SearchParams { radius: 8, step: 2 };
        let rfbme = Rfbme::new(rf, params);
        group.bench_with_input(BenchmarkId::new("rfbme", size), &size, |b, _| {
            b.iter(|| black_box(rfbme.estimate(&key, &new)))
        });
        // The exhaustive two-stage model, without the diff-tile early exit.
        group.bench_with_input(BenchmarkId::new("rfbme_reference", size), &size, |b, _| {
            b.iter(|| black_box(rfbme.estimate_reference(&key, &new)))
        });
        // The unoptimized variant: exhaustive SAD per receptive field with
        // no tile reuse (block = rf size, anchors on the rf grid).
        let unopt = BlockMatcher {
            block: rf.size,
            grid_stride: rf.stride,
            radius: params.radius,
            step: params.step,
            strategy: SearchStrategy::Exhaustive,
        };
        group.bench_with_input(BenchmarkId::new("unoptimized", size), &size, |b, _| {
            b.iter(|| black_box(unopt.run(&key, &new)))
        });
    }
    group.finish();
}

fn bench_fig14_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_estimators_48x48");
    let (key, new) = frames(48, 48);
    let rf = RfGeometry {
        size: 27,
        stride: 8,
        padding: 10,
    };
    let estimators: Vec<(&str, Box<dyn MotionEstimator>)> = vec![
        (
            "rfbme",
            Box::new(Rfbme::new(
                rf,
                SearchParams {
                    radius: 12,
                    step: 1,
                },
            )),
        ),
        ("lucas_kanade", Box::new(LucasKanade::default())),
        ("dense_flow_hs", Box::new(HornSchunck::default())),
        (
            "diamond_search",
            Box::new(BlockMatcher::codec(8, 12, SearchStrategy::Diamond)),
        ),
        (
            "three_step_search",
            Box::new(BlockMatcher::codec(8, 12, SearchStrategy::ThreeStep)),
        ),
    ];
    for (name, est) in &estimators {
        group.bench_function(*name, |b| b.iter(|| black_box(est.estimate(&key, &new))));
    }
    group.finish();
}

criterion_group!(benches, bench_rfbme_vs_unoptimized, bench_fig14_estimators);
criterion_main!(benches);
