//! Criterion micro-benchmarks (see `benches/`) and the shared measurement
//! suite behind the committed `BENCH_conv.json` trajectory and the CI
//! bench-regression gate (see [`trajectory`]).

#![forbid(unsafe_code)]

pub mod serve_load;
pub mod trajectory;
