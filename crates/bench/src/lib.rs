//! Criterion micro-benchmarks for the EVA2 reproduction (see `benches/`).
