//! The `BENCH_conv.json` measurement suite, shared by the `bench_conv`
//! trajectory writer and the `bench_gate` CI regression gate.
//!
//! Timing methodology matches the criterion shim: calibrate iterations so
//! one sample takes a target wall-clock duration, take N samples, report
//! the median per-iteration time (median is robust to scheduler noise).
//! [`Mode::Quick`] shrinks both knobs so a full suite run finishes in a few
//! seconds — absolute numbers get noisier, but the *ratios* the gate tracks
//! (speedups of one in-process implementation over another) stay stable
//! because both sides of each ratio see the same machine and the same
//! noise.

use eva2_cnn::layer::{Conv2d, Layer};
use eva2_cnn::zoo;
use eva2_core::executor::{AmcConfig, AmcExecutor};
use eva2_core::pipeline::PipelinedExecutor;
use eva2_core::policy::PolicyConfig;
use eva2_core::serve::Engine;
use eva2_core::sparse::RleActivation;
use eva2_core::warp::{warp_activation, warp_activation_sparse};
use eva2_motion::rfbme::{Rfbme, SearchParams};
use eva2_tensor::gemm::{gemm_nn, gemm_nn_axpy, GemmScratch};
use eva2_tensor::interp::Interpolation;
use eva2_tensor::{GrayImage, Shape3, SparseActivation, Tensor3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Measurement effort: the committed trajectory uses [`Mode::Full`]; CI's
/// regression gate uses [`Mode::Quick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ~5 ms samples × 15 — the committed-trajectory methodology.
    Full,
    /// ~1 ms samples × 5 — finishes the whole suite in seconds.
    Quick,
}

impl Mode {
    fn target_sample_ns(self) -> u64 {
        match self {
            Mode::Full => 5_000_000,
            Mode::Quick => 1_000_000,
        }
    }

    fn samples(self) -> usize {
        match self {
            Mode::Full => 15,
            Mode::Quick => 5,
        }
    }

    /// Warmup budget, deliberately identical in both modes: entries with
    /// microsecond bodies need on the order of a thousand iterations before
    /// caches and branch predictors reach steady state, and a mode-skewed
    /// warmup would bias Quick-vs-Full *ratios* — exactly what the gate
    /// compares — rather than just widening their noise.
    fn warmup_ns(self) -> u64 {
        5_000_000
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Entry {
    /// `group/path/id` benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

/// The full measurement set backing `BENCH_conv.json`.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Every timed benchmark, in measurement order.
    pub entries: Vec<Entry>,
    /// Conv forward: naive over im2col+GEMM (scratch path).
    pub conv_speedup: f64,
    /// Raw GEMM on the key-frame prefix critical-path shape: AXPY-panel
    /// kernel over the register-blocked micro-kernel.
    pub gemm_micro_over_axpy: f64,
    /// Key-frame prefix: four single `forward_prefix_scratch` runs over
    /// one batch-4 `forward_prefix_batched` call (the serving engine's
    /// cross-stream batching seam; amortized A-packing, direct-B kernel,
    /// single-pass bias store).
    pub batched_prefix_over_single: f64,
    /// Suffix-from-RLE: densify-then-dense over sparse-aware, per sparsity.
    pub suffix_speedups: Vec<(f32, f64)>,
    /// Early-target (conv-head) suffix at 50% sparsity: densify-then-dense
    /// over the transposed-weight gather path.
    pub convhead_sparse_over_densify: f64,
    /// End-to-end AMC: key frame over predicted frame (serial executor).
    pub key_over_predicted: f64,
    /// RFBME: exhaustive reference over the early-exit fast path.
    pub rfbme_reference_over_fast: f64,
    /// RFBME: the PR-2 single-level ascending-magnitude search over the
    /// two-level best-first search (both at the executor geometry).
    pub rfbme_twolevel_over_onelevel: f64,
    /// Predicted-frame tail (warp + sparse suffix): dense-intermediate
    /// (warp → dense tensor → `from_dense` → suffix) over the fused
    /// warp→sparse path the serving engine runs.
    pub predicted_frame_fused_over_dense: f64,
    /// Predicted frame: serial executor over the streaming pipeline.
    pub predicted_serial_over_pipelined: f64,
    /// Audited heap footprint (bytes) of one serving session holding key
    /// state for the FasterM analogue — the figure the serving engine's
    /// memory budgets ([`EngineLimits::max_session_bytes`] /
    /// `max_total_bytes`) are enforced against. Tracked so a PR that
    /// bloats per-stream state shows up in the trajectory.
    ///
    /// [`EngineLimits::max_session_bytes`]: eva2_core::serve::EngineLimits
    pub session_memory_footprint: f64,
}

/// One speedup ratio the CI gate compares against the committed trajectory.
#[derive(Debug, Clone)]
pub struct TrackedRatio {
    /// Dotted JSON key in `BENCH_conv.json`.
    pub key: String,
    /// The freshly measured value.
    pub value: f64,
    /// Host-marginal ratios are *advisory*: `bench_gate` warns on
    /// regression instead of failing unless `EVA2_BENCH_STRICT=1` is set.
    /// Two classes qualify: machine-topology-dependent ratios (serial vs
    /// pipelined executor — the committed value depends on the measuring
    /// host's core count), and noise-marginal ratios whose true value sits
    /// near 1.0 (the 50%-sparsity conv-head ratio), where a 30% band is
    /// routinely crossed by container noise alone. In-process
    /// algorithm-vs-algorithm ratios with real separation divide out the
    /// host and stay strict.
    pub advisory: bool,
}

/// Median ns/iter of `f` under the mode's sampling plan.
fn time_ns(mode: Mode, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1) as u64;
    let iters = (mode.target_sample_ns() / once).clamp(1, 1 << 20);
    // Warmup (same budget in every mode — see [`Mode::warmup_ns`]).
    for _ in 0..(mode.warmup_ns() / once).clamp(1, 1 << 20) {
        f();
    }
    let samples = mode.samples();
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// The 48×48 drifting test pattern every end-to-end entry uses.
fn frame(shift: usize) -> GrayImage {
    GrayImage::from_fn(48, 48, |y, x| {
        (125.0 + 50.0 * ((y as f32 * 0.29).sin() + ((x + shift) as f32 * 0.21).cos())) as u8
    })
}

/// Runs the whole suite, printing one line per entry.
pub fn measure(mode: Mode) -> Measurements {
    let mut entries: Vec<Entry> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>12.1} ns/iter");
        entries.push(Entry {
            name: name.to_string(),
            median_ns: ns,
        });
    };

    // ------------------------------------------------------------------
    // Conv forward: naive vs GEMM on a representative mid-network layer.
    // ------------------------------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let conv = Conv2d::new("bench", 16, 32, 3, 1, 1, &mut rng);
    let input = Tensor3::from_fn(Shape3::new(16, 32, 32), |c, y, x| {
        (((c * 31 + y * 7 + x) % 23) as f32 - 11.0) * 0.1
    });
    let naive = time_ns(mode, || {
        black_box(conv.forward_naive(black_box(&input)));
    });
    record("conv_forward/naive/16x32x32_k3", naive);
    let gemm = time_ns(mode, || {
        black_box(conv.forward(black_box(&input)));
    });
    record("conv_forward/gemm/16x32x32_k3", gemm);
    let mut scratch = GemmScratch::new();
    let gemm_scratch = time_ns(mode, || {
        black_box(conv.forward_scratch(black_box(&input), &mut scratch));
    });
    record("conv_forward/gemm_scratch/16x32x32_k3", gemm_scratch);
    let conv_speedup = naive / gemm_scratch;
    println!("conv speedup (naive / gemm_scratch): {conv_speedup:.2}x");

    // ------------------------------------------------------------------
    // Raw GEMM: register-blocked micro-kernel vs the PR-1 AXPY-panel
    // kernel, on the exact product the conv benchmark lowers to (the
    // key-frame prefix critical-path shape).
    // ------------------------------------------------------------------
    let (gm, gn, gk) = (32usize, 1024usize, 144usize);
    let ga: Vec<f32> = (0..gm * gk)
        .map(|i| ((i * 17) % 23) as f32 * 0.1 - 1.1)
        .collect();
    let gb: Vec<f32> = (0..gk * gn)
        .map(|i| ((i * 13) % 19) as f32 * 0.1 - 0.9)
        .collect();
    let mut gc = vec![0.0f32; gm * gn];
    let micro_ns = time_ns(mode, || {
        gc.fill(0.0);
        gemm_nn(gm, gn, gk, black_box(&ga), black_box(&gb), &mut gc);
        black_box(&gc);
    });
    record("gemm_micro/microkernel/32x1024x144", micro_ns);
    let axpy_ns = time_ns(mode, || {
        gc.fill(0.0);
        gemm_nn_axpy(gm, gn, gk, black_box(&ga), black_box(&gb), &mut gc);
        black_box(&gc);
    });
    record("gemm_micro/axpy/32x1024x144", axpy_ns);
    let gemm_micro_over_axpy = axpy_ns / micro_ns;
    let gflops = (2 * gm * gn * gk) as f64 / micro_ns;
    println!("gemm speedup (axpy / microkernel): {gemm_micro_over_axpy:.2}x ({gflops:.1} GFLOP/s)");

    // A strided large-kernel geometry (AlexNet-like first layer shape).
    let conv2 = Conv2d::new("bench2", 3, 24, 5, 2, 2, &mut rng);
    let input2 = Tensor3::from_fn(Shape3::new(3, 48, 48), |c, y, x| {
        (((c * 7 + y * 3 + x) % 17) as f32 - 8.0) * 0.1
    });
    let naive2 = time_ns(mode, || {
        black_box(conv2.forward_naive(black_box(&input2)));
    });
    record("conv_forward/naive/3x48x48_k5s2", naive2);
    let gemm2 = time_ns(mode, || {
        black_box(conv2.forward_scratch(black_box(&input2), &mut scratch));
    });
    record("conv_forward/gemm_scratch/3x48x48_k5s2", gemm2);

    // ------------------------------------------------------------------
    // Cross-stream batched key-frame prefix (serving engine seam):
    // batch-4 `forward_prefix_batched` vs four single prefix runs on the
    // FasterM analogue. Packing amortization and the direct-B kernel show
    // even on a single CPU — no thread-level parallelism is involved.
    // ------------------------------------------------------------------
    let z = zoo::tiny_fasterm(0);
    let target = z.late_target;
    let batched_prefix_over_single = {
        let frames: Vec<Tensor3> = (0..4).map(|i| frame(i * 3).to_tensor()).collect();
        let single = time_ns(mode, || {
            for f in &frames {
                black_box(
                    z.network
                        .forward_prefix_scratch(black_box(f), target, &mut scratch),
                );
            }
        });
        record("prefix_batch/single_x4/fasterm", single);
        let batched = time_ns(mode, || {
            // The clone mirrors the engine's per-batch `to_tensor` inputs
            // (the API consumes its batch); the single side clones each
            // input internally, so the comparison stays like-for-like.
            black_box(z.network.forward_prefix_batched(
                black_box(frames.clone()),
                target,
                &mut scratch,
            ));
        });
        record("prefix_batch/batched_b4/fasterm", batched);
        println!(
            "batched prefix speedup (4 singles / batch-4): {:.2}x",
            single / batched
        );
        single / batched
    };

    // ------------------------------------------------------------------
    // Suffix from the RLE store: densify-then-dense vs sparse-aware.
    // ------------------------------------------------------------------
    let shape = z.network.shape_after(target);
    let mut suffix_speedups: Vec<(f32, f64)> = Vec::new();
    for sparsity in [0.5f32, 0.8, 0.95] {
        let act = Tensor3::from_fn(shape, |c, y, x| {
            let i = (c * 131 + y * 17 + x * 3) % 1000;
            if (i as f32) < sparsity * 1000.0 {
                0.0
            } else {
                (i as f32) * 0.004
            }
        });
        let rle = RleActivation::encode(&act, 0.0);
        let pct = (sparsity * 100.0) as u32;
        let densify = time_ns(mode, || {
            let dense = rle.decode();
            black_box(z.network.forward_suffix(&dense, target));
        });
        record(&format!("suffix/densify_dense/{pct}pct"), densify);
        let sparse = time_ns(mode, || {
            let s = rle.to_sparse();
            black_box(z.network.forward_suffix_sparse(&s, target, &mut scratch));
        });
        record(&format!("suffix/sparse_aware/{pct}pct"), sparse);
        suffix_speedups.push((sparsity, densify / sparse));
        println!(
            "suffix speedup at {pct}% sparsity: {:.2}x",
            densify / sparse
        );
    }

    // ------------------------------------------------------------------
    // Early-target conv head: the first suffix layer is a *convolution*.
    // Its transposed-weight gather path (fed straight from the RLE store)
    // vs densify-then-dense through the GEMM engine, measured at the layer
    // the restructure changed so the ratio is directly attributable.
    // ------------------------------------------------------------------
    let early = z.early_target;
    let early_shape = z.network.shape_after(early);
    let convhead_sparse_over_densify = {
        let head = &z.network.layers()[early + 1];
        let act = Tensor3::from_fn(early_shape, |c, y, x| {
            let i = (c * 131 + y * 17 + x * 3) % 1000;
            if i < 500 {
                0.0
            } else {
                (i as f32) * 0.004
            }
        });
        let rle = RleActivation::encode(&act, 0.0);
        let densify = time_ns(mode, || {
            let dense = rle.decode();
            black_box(head.forward_scratch(&dense, &mut scratch));
        });
        record("convhead/densify_dense/50pct", densify);
        let sparse = time_ns(mode, || {
            let s = rle.to_sparse();
            black_box(
                head.forward_sparse(&s, &mut scratch)
                    .expect("conv head has a sparse path"),
            );
        });
        record("convhead/sparse_gather/50pct", sparse);
        println!(
            "conv-head speedup at 50% sparsity: {:.2}x",
            densify / sparse
        );
        densify / sparse
    };

    // ------------------------------------------------------------------
    // RFBME at the executor's geometry: two-level best-first fast path vs
    // the retained single-level search vs the exhaustive two-stage
    // reference.
    // ------------------------------------------------------------------
    let f0 = frame(0);
    let f1 = frame(1);
    let probe = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
    let rf_geom = probe.rf_geometry();
    let rfbme = Rfbme::new(rf_geom, SearchParams { radius: 8, step: 1 });
    drop(probe);
    let rfbme_fast = time_ns(mode, || {
        black_box(rfbme.estimate(black_box(&f0), black_box(&f1)));
    });
    record("rfbme/fast/48x48_r8s1", rfbme_fast);
    let rfbme_onelevel = time_ns(mode, || {
        black_box(rfbme.estimate_onelevel(black_box(&f0), black_box(&f1)));
    });
    record("rfbme/onelevel/48x48_r8s1", rfbme_onelevel);
    let rfbme_reference = time_ns(mode, || {
        black_box(rfbme.estimate_reference(black_box(&f0), black_box(&f1)));
    });
    record("rfbme/reference/48x48_r8s1", rfbme_reference);
    let rfbme_reference_over_fast = rfbme_reference / rfbme_fast;
    let rfbme_twolevel_over_onelevel = rfbme_onelevel / rfbme_fast;
    println!("rfbme speedup (reference / fast): {rfbme_reference_over_fast:.2}x");
    println!("rfbme speedup (one-level / two-level): {rfbme_twolevel_over_onelevel:.2}x");

    // ------------------------------------------------------------------
    // Predicted-frame tail: warp + sparse suffix, fused warp→sparse (the
    // serving path) vs the PR-4 dense-intermediate. Key state is prepared
    // once outside the timed bodies, exactly as a session would hold it.
    // ------------------------------------------------------------------
    let predicted_frame_fused_over_dense = {
        let cfg = AmcConfig::default();
        let act = z
            .network
            .forward_prefix_scratch(&f0.to_tensor(), target, &mut scratch);
        let rle = RleActivation::encode(&act, cfg.sparsity_threshold);
        let decoded = rle.to_sparse().to_dense();
        let motion = rfbme.estimate(&f0, &f1);
        let dense = time_ns(mode, || {
            let (warped, _) = warp_activation(
                black_box(&decoded),
                black_box(&motion.field),
                rf_geom.stride,
                Interpolation::Bilinear,
            );
            let sparse = SparseActivation::from_dense(&warped, 0.0);
            black_box(
                z.network
                    .forward_suffix_sparse(&sparse, target, &mut scratch),
            );
        });
        record("predicted_tail/warp_dense_suffix/fasterm", dense);
        let fused = time_ns(mode, || {
            let (sparse, _) = warp_activation_sparse(
                black_box(&decoded),
                black_box(&motion.field),
                rf_geom.stride,
                Interpolation::Bilinear,
            );
            black_box(
                z.network
                    .forward_suffix_sparse(&sparse, target, &mut scratch),
            );
        });
        record("predicted_tail/warp_fused_suffix/fasterm", fused);
        println!(
            "predicted tail speedup (dense intermediate / fused): {:.2}x",
            dense / fused
        );
        dense / fused
    };

    // ------------------------------------------------------------------
    // End-to-end AMC frames (FasterM analogue), serial and pipelined.
    // ------------------------------------------------------------------
    let always_key = AmcConfig {
        policy: PolicyConfig::AlwaysKey,
        ..Default::default()
    };
    let mut amc = AmcExecutor::try_new(&z.network, always_key).unwrap();
    amc.process(&f0);
    let key_ns = time_ns(mode, || {
        black_box(amc.process(black_box(&f1)));
    });
    record("pipeline/key_frame/fasterm", key_ns);
    let never_key = AmcConfig {
        policy: PolicyConfig::BlockError {
            threshold: f32::INFINITY,
            max_gap: usize::MAX,
        },
        ..Default::default()
    };
    let mut amc = AmcExecutor::try_new(&z.network, never_key).unwrap();
    amc.process(&f0);
    let pred_ns = time_ns(mode, || {
        black_box(amc.process(black_box(&f1)));
    });
    record("pipeline/predicted_frame/fasterm", pred_ns);
    println!("key/predicted frame ratio: {:.2}x", key_ns / pred_ns);

    // Steady-state streaming throughput: each push returns the previous
    // frame's result while the worker estimates the next frame's motion.
    let mut pipe = PipelinedExecutor::new(AmcExecutor::try_new(&z.network, never_key).unwrap());
    pipe.push(&f0);
    let pred_pipe_ns = time_ns(mode, || {
        black_box(pipe.push(black_box(&f1)));
    });
    record("pipeline/predicted_frame/pipelined", pred_pipe_ns);
    let predicted_serial_over_pipelined = pred_ns / pred_pipe_ns;
    println!("predicted frame serial/pipelined: {predicted_serial_over_pipelined:.2}x");

    // ------------------------------------------------------------------
    // Serving-session memory: the audited footprint one stream holds in
    // steady state (struct + key image + RLE/sparse/decoded activations +
    // RFBME scratch). Not a timing — a capacity figure for the lifecycle
    // budgets.
    // ------------------------------------------------------------------
    let session_memory_footprint = {
        let net = Arc::new(zoo::tiny_fasterm(0).network);
        let mut engine =
            Engine::new(net, AmcConfig::default()).expect("default serving config is valid");
        let mut session = engine
            .open_session()
            .expect("unlimited engine has capacity");
        engine.process(&mut session, &f0).expect("admitted");
        engine.process(&mut session, &f1).expect("admitted");
        let bytes = session.memory_footprint();
        println!("session memory footprint (steady state): {bytes} bytes");
        bytes as f64
    };

    Measurements {
        entries,
        conv_speedup,
        gemm_micro_over_axpy,
        batched_prefix_over_single,
        suffix_speedups,
        convhead_sparse_over_densify,
        key_over_predicted: key_ns / pred_ns,
        rfbme_reference_over_fast,
        rfbme_twolevel_over_onelevel,
        predicted_frame_fused_over_dense,
        predicted_serial_over_pipelined,
        session_memory_footprint,
    }
}

impl Measurements {
    /// Renders the `BENCH_conv.json` document.
    pub fn to_json(&self) -> String {
        let mut body = String::from("{\n  \"bench\": \"conv_engine\",\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                body,
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}}}",
                e.name, e.median_ns
            );
            body.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            body,
            "  ],\n  \"conv_speedup_naive_over_gemm\": {:.2},\n  \"gemm_micro_over_axpy\": {:.2},\n  \"batched_prefix_over_single\": {:.2},\n  \"suffix_speedup_sparse_over_densify\": {{\n",
            self.conv_speedup, self.gemm_micro_over_axpy, self.batched_prefix_over_single
        );
        for (i, (s, x)) in self.suffix_speedups.iter().enumerate() {
            let _ = write!(body, "    \"{:.0}pct\": {x:.2}", s * 100.0);
            body.push_str(if i + 1 < self.suffix_speedups.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            body,
            "  }},\n  \"convhead_sparse_over_densify_50pct\": {:.2},\n  \"key_over_predicted_frame\": {:.2},\n  \"rfbme_reference_over_fast\": {:.2},\n  \"rfbme_twolevel_over_onelevel\": {:.2},\n  \"predicted_frame_fused_over_dense\": {:.2},\n  \"predicted_serial_over_pipelined\": {:.2},\n  \"session_memory_footprint\": {:.0}\n}}\n",
            self.convhead_sparse_over_densify,
            self.key_over_predicted,
            self.rfbme_reference_over_fast,
            self.rfbme_twolevel_over_onelevel,
            self.predicted_frame_fused_over_dense,
            self.predicted_serial_over_pipelined,
            self.session_memory_footprint
        );
        body
    }

    /// The speedup ratios the CI gate tracks. Ratios (not absolute times)
    /// are tracked because they divide out the host machine's speed; the
    /// ones that *don't* fully divide it out (they depend on the host's
    /// core topology) carry `advisory: true` — see [`TrackedRatio`].
    pub fn tracked_ratios(&self) -> Vec<TrackedRatio> {
        let strict = |key: &str, value: f64| TrackedRatio {
            key: key.to_string(),
            value,
            advisory: false,
        };
        let mut v = vec![
            strict("conv_speedup_naive_over_gemm", self.conv_speedup),
            strict("gemm_micro_over_axpy", self.gemm_micro_over_axpy),
            // Since the PR-5 port of the direct-B kernel + bias-store
            // epilogue to the single-frame path, the batch's only
            // remaining edge is A-pack amortisation — the ratio's true
            // value is ~1.0, which puts it in the noise-marginal advisory
            // class (a 30% band around parity flakes on container noise).
            TrackedRatio {
                key: "batched_prefix_over_single".to_string(),
                value: self.batched_prefix_over_single,
                advisory: true,
            },
        ];
        for (s, x) in &self.suffix_speedups {
            v.push(strict(
                &format!("suffix_speedup_sparse_over_densify.{:.0}pct", s * 100.0),
                *x,
            ));
        }
        // The conv-head ratio sits barely above 1.0 (PR 3 committed 1.12,
        // PR 4's container re-measure drifted to 1.06 — and the PR-5 port
        // of the direct-B kernel to the single-frame path speeds up its
        // *densify* baseline, pushing the ratio closer still to parity).
        // With container noise a 30% band around ~1.0 flakes, so it is
        // advisory: reported, tracked in the trajectory, but warn-only
        // unless EVA2_BENCH_STRICT=1.
        v.push(TrackedRatio {
            key: "convhead_sparse_over_densify_50pct".to_string(),
            value: self.convhead_sparse_over_densify,
            advisory: true,
        });
        v.push(strict("key_over_predicted_frame", self.key_over_predicted));
        v.push(strict(
            "rfbme_reference_over_fast",
            self.rfbme_reference_over_fast,
        ));
        v.push(strict(
            "rfbme_twolevel_over_onelevel",
            self.rfbme_twolevel_over_onelevel,
        ));
        v.push(strict(
            "predicted_frame_fused_over_dense",
            self.predicted_frame_fused_over_dense,
        ));
        // Serial-vs-pipelined pits one thread against two: its committed
        // value is a property of the measuring machine's core count, not of
        // the code, so a multi-core↔single-core CI mismatch would trip the
        // tolerance spuriously.
        v.push(TrackedRatio {
            key: "predicted_serial_over_pipelined".to_string(),
            value: self.predicted_serial_over_pipelined,
            advisory: true,
        });
        // A capacity figure, not a speedup: `Vec` growth policy and
        // allocator round-up differ across toolchains, so byte-for-byte
        // bands would flake on a toolchain bump. Advisory keeps bloat
        // visible without gating on it.
        v.push(TrackedRatio {
            key: "session_memory_footprint".to_string(),
            value: self.session_memory_footprint,
            advisory: true,
        });
        v
    }
}

/// Extracts `"key": <number>` from a JSON document, addressing nested keys
/// with dots (`"suffix_speedup_sparse_over_densify.50pct"`). Minimal by
/// design: it only needs to read back the flat documents this module
/// writes.
pub fn extract_number(json: &str, dotted_key: &str) -> Option<f64> {
    let leaf = dotted_key.rsplit('.').next()?;
    let needle = format!("\"{leaf}\":");
    let mut search_from = 0;
    while let Some(pos) = json[search_from..].find(&needle) {
        let after = search_from + pos + needle.len();
        let rest = json[after..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        if end > 0 {
            if let Ok(x) = rest[..end].parse::<f64>() {
                return Some(x);
            }
        }
        search_from = after;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_reads_flat_and_nested_keys() {
        let doc = "{\n  \"a\": 16.62,\n  \"nest\": {\n    \"50pct\": 4.48,\n    \"80pct\": 11.63\n  },\n  \"z\": -2.5\n}\n";
        assert_eq!(extract_number(doc, "a"), Some(16.62));
        assert_eq!(extract_number(doc, "nest.50pct"), Some(4.48));
        assert_eq!(extract_number(doc, "nest.80pct"), Some(11.63));
        assert_eq!(extract_number(doc, "z"), Some(-2.5));
        assert_eq!(extract_number(doc, "missing"), None);
    }

    #[test]
    fn json_roundtrips_through_extract_number() {
        let m = Measurements {
            entries: vec![Entry {
                name: "x/y".into(),
                median_ns: 123.4,
            }],
            conv_speedup: 17.25,
            gemm_micro_over_axpy: 2.4,
            batched_prefix_over_single: 1.3,
            suffix_speedups: vec![(0.5, 4.5), (0.8, 11.0)],
            convhead_sparse_over_densify: 1.3,
            key_over_predicted: 1.21,
            rfbme_reference_over_fast: 6.8,
            rfbme_twolevel_over_onelevel: 1.8,
            predicted_frame_fused_over_dense: 1.4,
            predicted_serial_over_pipelined: 1.15,
            session_memory_footprint: 123456.0,
        };
        let json = m.to_json();
        for ratio in m.tracked_ratios() {
            let read = extract_number(&json, &ratio.key)
                .unwrap_or_else(|| panic!("{} missing from {json}", ratio.key));
            assert!(
                (read - ratio.value).abs() < 0.01,
                "{}: {read} vs {}",
                ratio.key,
                ratio.value
            );
        }
    }

    #[test]
    fn only_host_marginal_ratios_are_advisory() {
        let m = Measurements {
            entries: Vec::new(),
            conv_speedup: 1.0,
            gemm_micro_over_axpy: 1.0,
            batched_prefix_over_single: 1.0,
            suffix_speedups: vec![(0.5, 1.0)],
            convhead_sparse_over_densify: 1.0,
            key_over_predicted: 1.0,
            rfbme_reference_over_fast: 1.0,
            rfbme_twolevel_over_onelevel: 1.0,
            predicted_frame_fused_over_dense: 1.0,
            predicted_serial_over_pipelined: 1.0,
            session_memory_footprint: 1.0,
        };
        let advisory: Vec<String> = m
            .tracked_ratios()
            .into_iter()
            .filter(|r| r.advisory)
            .map(|r| r.key)
            .collect();
        assert_eq!(
            advisory,
            vec![
                "batched_prefix_over_single",
                "convhead_sparse_over_densify_50pct",
                "predicted_serial_over_pipelined",
                "session_memory_footprint"
            ]
        );
    }
}
