//! CI bench-regression gate.
//!
//! Re-measures the tracked speedup ratios (conv GEMM speedup, sparse-suffix
//! speedups, key/predicted frame ratio, RFBME fast-path speedup) on a
//! reduced sampling plan and compares them against the committed
//! `BENCH_conv.json`. Exits nonzero when any ratio regressed by more than
//! the tolerance (default 30%), so a PR that quietly loses an optimization
//! fails CI instead of merging.
//!
//! Ratios — not absolute nanoseconds — are compared because they divide out
//! how fast the CI machine happens to be; each ratio pits two in-process
//! implementations against each other under identical noise.
//!
//! Ratios flagged *advisory* (machine-topology-dependent, e.g. the serial
//! vs pipelined executor ratio, whose committed value depends on the
//! measuring host's core count) are reported but never fail the gate
//! unless the `EVA2_BENCH_STRICT=1` environment variable is set — a
//! multi-core CI runner comparing against a trajectory committed from a
//! single-CPU container (or vice versa) would otherwise trip the tolerance
//! with no code change at all.
//!
//! ```text
//! cargo run --release -p eva2-bench --bin bench_gate [-- OPTIONS]
//!
//! OPTIONS:
//!   --baseline <path>   committed trajectory to gate against [BENCH_conv.json]
//!   --out <path>        where to write the fresh measurements (uploaded as a
//!                       CI artifact) [BENCH_gate_fresh.json]
//!   --tolerance <frac>  allowed fractional regression [0.30]
//!   --inject <factor>   multiply every fresh ratio by <factor> before
//!                       comparing — a self-test hook to demonstrate the gate
//!                       fails on a real regression (e.g. --inject 0.5)
//! ```
//!
//! The full-sampling trajectory writer is `bench_conv`; see
//! `eva2_core::pipeline` for when to regenerate the committed file.

use eva2_bench::trajectory::{extract_number, measure, Mode};
use std::process::ExitCode;

struct Options {
    baseline: String,
    out: String,
    tolerance: f64,
    inject: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        baseline: "BENCH_conv.json".into(),
        out: "BENCH_gate_fresh.json".into(),
        tolerance: 0.30,
        inject: 1.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => opts.baseline = value("--baseline")?,
            "--out" => opts.out = value("--out")?,
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--inject" => {
                opts.inject = value("--inject")?
                    .parse()
                    .map_err(|e| format!("--inject: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline {}: {e}", opts.baseline);
            return ExitCode::from(2);
        }
    };

    let fresh = measure(Mode::Quick);
    if let Err(e) = std::fs::write(&opts.out, fresh.to_json()) {
        eprintln!("bench_gate: could not write {}: {e}", opts.out);
    } else {
        println!("bench_gate: wrote fresh measurements to {}", opts.out);
    }
    if opts.inject != 1.0 {
        println!(
            "bench_gate: INJECTING artificial factor {} into fresh ratios (self-test)",
            opts.inject
        );
    }

    // Advisory (machine-topology-dependent) ratios only gate when the
    // operator explicitly opts in, e.g. on a host matching the committed
    // trajectory's topology.
    let strict = std::env::var_os("EVA2_BENCH_STRICT").is_some_and(|v| v == "1");
    let mut failed = false;
    println!(
        "\n{:<44} {:>10} {:>10} {:>8}  verdict",
        "tracked ratio", "committed", "fresh", "delta"
    );
    for ratio in fresh.tracked_ratios() {
        let key = ratio.key;
        let fresh_value = ratio.value * opts.inject;
        let Some(committed) = extract_number(&baseline, &key) else {
            // A newly tracked ratio has no baseline yet; it starts gating
            // once bench_conv commits it.
            println!("{key:<44} {:>10} {fresh_value:>10.2} {:>8}  NEW", "-", "-");
            continue;
        };
        let delta = fresh_value / committed - 1.0;
        let regressed = fresh_value < committed * (1.0 - opts.tolerance);
        let gating = !ratio.advisory || strict;
        let verdict = match (regressed, gating) {
            (false, _) => "ok",
            (true, true) => "REGRESSED",
            (true, false) => "regressed (advisory, not gating)",
        };
        println!(
            "{key:<44} {committed:>10.2} {fresh_value:>10.2} {:>+7.1}%  {verdict}",
            delta * 100.0,
        );
        failed |= regressed && gating;
    }

    if failed {
        eprintln!(
            "\nbench_gate: FAIL — ratio(s) regressed more than {:.0}% vs {}",
            opts.tolerance * 100.0,
            opts.baseline
        );
        eprintln!(
            "If the regression is intended, regenerate the baseline with \
             `cargo run --release -p eva2-bench --bin bench_conv` and commit it."
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nbench_gate: OK — all tracked ratios within {:.0}% of {}",
            opts.tolerance * 100.0,
            opts.baseline
        );
        ExitCode::SUCCESS
    }
}
