//! CI bench-regression gate.
//!
//! Re-measures the tracked speedup ratios (conv GEMM speedup, sparse-suffix
//! speedups, key/predicted frame ratio, RFBME fast-path speedup) on a
//! reduced sampling plan and compares them against the committed
//! `BENCH_conv.json`. Exits nonzero when any ratio regressed by more than
//! the tolerance (default 30%), so a PR that quietly loses an optimization
//! fails CI instead of merging.
//!
//! Ratios — not absolute nanoseconds — are compared because they divide out
//! how fast the CI machine happens to be; each ratio pits two in-process
//! implementations against each other under identical noise.
//!
//! Ratios flagged *advisory* (machine-topology-dependent, e.g. the serial
//! vs pipelined executor ratio, whose committed value depends on the
//! measuring host's core count) are reported but never fail the gate
//! unless the `EVA2_BENCH_STRICT=1` environment variable is set — a
//! multi-core CI runner comparing against a trajectory committed from a
//! single-CPU container (or vice versa) would otherwise trip the tolerance
//! with no code change at all.
//!
//! ```text
//! cargo run --release -p eva2-bench --bin bench_gate [-- OPTIONS]
//!
//! OPTIONS:
//!   --baseline <path>        committed microkernel trajectory [BENCH_conv.json]
//!   --serve-baseline <path>  committed serving trajectory [BENCH_serve.json]
//!   --out <path>             fresh microkernel measurements (uploaded as a
//!                            CI artifact) [BENCH_gate_fresh.json]
//!   --serve-out <path>       fresh serving measurements [BENCH_serve_gate_fresh.json]
//!   --tolerance <frac>  allowed fractional regression [0.30]
//!   --inject <factor>   multiply every fresh ratio by <factor> before
//!                       comparing — a self-test hook to demonstrate the gate
//!                       fails on a real regression (e.g. --inject 0.5)
//! ```
//!
//! The serving suite (`BENCH_serve.json`, measured by
//! [`eva2_bench::serve_load`]) is gated the same way, plus one *absolute*
//! check: `serial_over_single_worker_engine` must stay above the strict
//! overhead floor (the one-worker engine may cost at most ~10% over the
//! serial oracles) on any host, independent of the committed baseline.
//!
//! The full-sampling trajectory writers are `bench_conv` and `bench_serve`;
//! see `eva2_core::pipeline` for when to regenerate the committed files.

use eva2_bench::serve_load::{self, STRICT_OVERHEAD_FLOOR};
use eva2_bench::trajectory::{extract_number, measure, Mode, TrackedRatio};
use std::process::ExitCode;

struct Options {
    baseline: String,
    serve_baseline: String,
    out: String,
    serve_out: String,
    tolerance: f64,
    inject: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        baseline: "BENCH_conv.json".into(),
        serve_baseline: "BENCH_serve.json".into(),
        out: "BENCH_gate_fresh.json".into(),
        serve_out: "BENCH_serve_gate_fresh.json".into(),
        tolerance: 0.30,
        inject: 1.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => opts.baseline = value("--baseline")?,
            "--serve-baseline" => opts.serve_baseline = value("--serve-baseline")?,
            "--out" => opts.out = value("--out")?,
            "--serve-out" => opts.serve_out = value("--serve-out")?,
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--inject" => {
                opts.inject = value("--inject")?
                    .parse()
                    .map_err(|e| format!("--inject: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// Compares one suite's fresh tracked ratios against its committed
/// baseline, printing a verdict per ratio and accumulating failure.
fn gate_ratios(
    baseline: &str,
    ratios: Vec<TrackedRatio>,
    opts: &Options,
    strict: bool,
    failed: &mut bool,
) {
    println!(
        "\n{:<44} {:>10} {:>10} {:>8}  verdict",
        "tracked ratio", "committed", "fresh", "delta"
    );
    for ratio in ratios {
        let key = ratio.key;
        let fresh_value = ratio.value * opts.inject;
        let Some(committed) = extract_number(baseline, &key) else {
            // A newly tracked ratio has no baseline yet; it starts gating
            // once the trajectory writer commits it.
            println!("{key:<44} {:>10} {fresh_value:>10.2} {:>8}  NEW", "-", "-");
            continue;
        };
        let delta = fresh_value / committed - 1.0;
        let regressed = fresh_value < committed * (1.0 - opts.tolerance);
        let gating = !ratio.advisory || strict;
        let verdict = match (regressed, gating) {
            (false, _) => "ok",
            (true, true) => "REGRESSED",
            (true, false) => "regressed (advisory, not gating)",
        };
        println!(
            "{key:<44} {committed:>10.2} {fresh_value:>10.2} {:>+7.1}%  {verdict}",
            delta * 100.0,
        );
        *failed |= regressed && gating;
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline {}: {e}", opts.baseline);
            return ExitCode::from(2);
        }
    };

    let fresh = measure(Mode::Quick);
    if let Err(e) = std::fs::write(&opts.out, fresh.to_json()) {
        eprintln!("bench_gate: could not write {}: {e}", opts.out);
    } else {
        println!("bench_gate: wrote fresh measurements to {}", opts.out);
    }
    if opts.inject != 1.0 {
        println!(
            "bench_gate: INJECTING artificial factor {} into fresh ratios (self-test)",
            opts.inject
        );
    }

    // Advisory (machine-topology-dependent) ratios only gate when the
    // operator explicitly opts in, e.g. on a host matching the committed
    // trajectory's topology.
    let strict = std::env::var_os("EVA2_BENCH_STRICT").is_some_and(|v| v == "1");
    let mut failed = false;
    gate_ratios(
        &baseline,
        fresh.tracked_ratios(),
        &opts,
        strict,
        &mut failed,
    );

    // ------------------------------------------------------------------
    // Serving suite: closed-loop load against the worker-pool engine.
    // ------------------------------------------------------------------
    let serve_baseline = match std::fs::read_to_string(&opts.serve_baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read serve baseline {}: {e}",
                opts.serve_baseline
            );
            return ExitCode::from(2);
        }
    };
    let serve_fresh = serve_load::measure(Mode::Quick);
    if let Err(e) = std::fs::write(&opts.serve_out, serve_fresh.to_json()) {
        eprintln!("bench_gate: could not write {}: {e}", opts.serve_out);
    } else {
        println!(
            "bench_gate: wrote fresh serving measurements to {}",
            opts.serve_out
        );
    }
    gate_ratios(
        &serve_baseline,
        serve_fresh.tracked_ratios(),
        &opts,
        strict,
        &mut failed,
    );

    // The absolute strict check: one-worker engine overhead over the serial
    // oracles, independent of any committed baseline.
    let overhead_ratio = serve_fresh.serial_over_single_worker_engine * opts.inject;
    if overhead_ratio < STRICT_OVERHEAD_FLOOR {
        eprintln!(
            "bench_gate: FAIL — serial_over_single_worker_engine {overhead_ratio:.3} is below \
             the absolute floor {STRICT_OVERHEAD_FLOOR} (single-worker engine overhead > ~10%)"
        );
        failed = true;
    } else {
        println!(
            "single-worker overhead floor: {overhead_ratio:.3} >= {STRICT_OVERHEAD_FLOOR} — ok"
        );
    }

    if failed {
        eprintln!(
            "\nbench_gate: FAIL — ratio(s) regressed more than {:.0}% vs {} / {}, or the \
             absolute single-worker overhead floor was missed",
            opts.tolerance * 100.0,
            opts.baseline,
            opts.serve_baseline
        );
        eprintln!(
            "If the regression is intended, regenerate the baselines with \
             `cargo run --release -p eva2-bench --bin bench_conv` (and bench_serve) and \
             commit them."
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nbench_gate: OK — all tracked ratios within {:.0}% of {} / {}",
            opts.tolerance * 100.0,
            opts.baseline,
            opts.serve_baseline
        );
        ExitCode::SUCCESS
    }
}
