//! Produces `BENCH_serve.json` — the committed serving trajectory of the
//! worker-pool engine under closed-loop multi-stream load: streams-per-core
//! at the 33.3 ms SLO, p50/p99 per-frame latency, per-session memory, the
//! strict single-worker overhead ratio, and the advisory threaded-scaling
//! ratio.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p eva2-bench --bin bench_serve
//! ```
//!
//! Set `EVA2_BENCH_QUICK=1` for a seconds-long reduced-sampling run
//! (noisier absolute numbers; the tracked ratios stay meaningful). An
//! optional positional argument overrides the output path, so CI smoke
//! runs can write a scratch file without clobbering the committed
//! baseline. The measurement methodology lives in
//! [`eva2_bench::serve_load`].

use eva2_bench::serve_load::measure;
use eva2_bench::trajectory::Mode;

fn main() {
    let mode = if std::env::var_os("EVA2_BENCH_QUICK").is_some() {
        Mode::Quick
    } else {
        Mode::Full
    };
    let m = measure(mode);
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    match std::fs::write(&path, m.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
