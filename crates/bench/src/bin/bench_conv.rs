//! Produces `BENCH_conv.json` — the committed performance trajectory of the
//! convolution engine (naive vs im2col+GEMM) and the sparse-aware suffix
//! (skip-zero vs densify-then-dense).
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p eva2-bench --bin bench_conv
//! ```
//!
//! Timing method matches the criterion shim: calibrate iterations so one
//! sample takes ~5 ms, take 15 samples, report the median per-iteration
//! time (median is robust to scheduler noise).

use eva2_cnn::layer::{Conv2d, Layer};
use eva2_cnn::zoo;
use eva2_core::sparse::RleActivation;
use eva2_tensor::gemm::GemmScratch;
use eva2_tensor::{Shape3, Tensor3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const TARGET_SAMPLE_NS: u64 = 5_000_000;
const SAMPLES: usize = 15;

/// Median ns/iter of `f` (same methodology as the criterion shim).
fn time_ns(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1) as u64;
    let iters = (TARGET_SAMPLE_NS / once).clamp(1, 1 << 20);
    // Warmup.
    for _ in 0..iters {
        f();
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

struct Entry {
    name: String,
    median_ns: f64,
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {:>12.1} ns/iter", ns);
        entries.push(Entry {
            name: name.to_string(),
            median_ns: ns,
        });
    };

    // ------------------------------------------------------------------
    // Conv forward: naive vs GEMM on a representative mid-network layer.
    // ------------------------------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let conv = Conv2d::new("bench", 16, 32, 3, 1, 1, &mut rng);
    let input = Tensor3::from_fn(Shape3::new(16, 32, 32), |c, y, x| {
        (((c * 31 + y * 7 + x) % 23) as f32 - 11.0) * 0.1
    });
    let naive = time_ns(|| {
        black_box(conv.forward_naive(black_box(&input)));
    });
    record("conv_forward/naive/16x32x32_k3", naive);
    let gemm = time_ns(|| {
        black_box(conv.forward(black_box(&input)));
    });
    record("conv_forward/gemm/16x32x32_k3", gemm);
    let mut scratch = GemmScratch::new();
    let gemm_scratch = time_ns(|| {
        black_box(conv.forward_scratch(black_box(&input), &mut scratch));
    });
    record("conv_forward/gemm_scratch/16x32x32_k3", gemm_scratch);
    let conv_speedup = naive / gemm_scratch;
    println!("conv speedup (naive / gemm_scratch): {conv_speedup:.2}x");

    // A strided large-kernel geometry (AlexNet-like first layer shape).
    let conv2 = Conv2d::new("bench2", 3, 24, 5, 2, 2, &mut rng);
    let input2 = Tensor3::from_fn(Shape3::new(3, 48, 48), |c, y, x| {
        (((c * 7 + y * 3 + x) % 17) as f32 - 8.0) * 0.1
    });
    let naive2 = time_ns(|| {
        black_box(conv2.forward_naive(black_box(&input2)));
    });
    record("conv_forward/naive/3x48x48_k5s2", naive2);
    let gemm2 = time_ns(|| {
        black_box(conv2.forward_scratch(black_box(&input2), &mut scratch));
    });
    record("conv_forward/gemm_scratch/3x48x48_k5s2", gemm2);

    // ------------------------------------------------------------------
    // Suffix from the RLE store: densify-then-dense vs sparse-aware.
    // ------------------------------------------------------------------
    let z = zoo::tiny_fasterm(0);
    let target = z.late_target;
    let shape = z.network.shape_after(target);
    let mut suffix_speedups: Vec<(f32, f64)> = Vec::new();
    for sparsity in [0.5f32, 0.8, 0.95] {
        let act = Tensor3::from_fn(shape, |c, y, x| {
            let i = (c * 131 + y * 17 + x * 3) % 1000;
            if (i as f32) < sparsity * 1000.0 {
                0.0
            } else {
                (i as f32) * 0.004
            }
        });
        let rle = RleActivation::encode(&act, 0.0);
        let pct = (sparsity * 100.0) as u32;
        let densify = time_ns(|| {
            let dense = rle.decode();
            black_box(z.network.forward_suffix(&dense, target));
        });
        record(&format!("suffix/densify_dense/{pct}pct"), densify);
        let sparse = time_ns(|| {
            let s = rle.to_sparse();
            black_box(z.network.forward_suffix_sparse(&s, target, &mut scratch));
        });
        record(&format!("suffix/sparse_aware/{pct}pct"), sparse);
        suffix_speedups.push((sparsity, densify / sparse));
        println!(
            "suffix speedup at {pct}% sparsity: {:.2}x",
            densify / sparse
        );
    }

    // ------------------------------------------------------------------
    // End-to-end AMC frames (FasterM analogue).
    // ------------------------------------------------------------------
    use eva2_core::executor::{AmcConfig, AmcExecutor};
    use eva2_core::policy::PolicyConfig;
    use eva2_tensor::GrayImage;
    let frame = |shift: usize| {
        GrayImage::from_fn(48, 48, |y, x| {
            (125.0 + 50.0 * ((y as f32 * 0.29).sin() + ((x + shift) as f32 * 0.21).cos())) as u8
        })
    };
    let f0 = frame(0);
    let f1 = frame(1);
    let always_key = AmcConfig {
        policy: PolicyConfig::AlwaysKey,
        ..Default::default()
    };
    let mut amc = AmcExecutor::new(&z.network, always_key);
    amc.process(&f0);
    let key_ns = time_ns(|| {
        black_box(amc.process(black_box(&f1)));
    });
    record("pipeline/key_frame/fasterm", key_ns);
    let never_key = AmcConfig {
        policy: PolicyConfig::BlockError {
            threshold: f32::INFINITY,
            max_gap: usize::MAX,
        },
        ..Default::default()
    };
    let mut amc = AmcExecutor::new(&z.network, never_key);
    amc.process(&f0);
    let pred_ns = time_ns(|| {
        black_box(amc.process(black_box(&f1)));
    });
    record("pipeline/predicted_frame/fasterm", pred_ns);
    println!("key/predicted frame ratio: {:.2}x", key_ns / pred_ns);

    // ------------------------------------------------------------------
    // JSON dump.
    // ------------------------------------------------------------------
    let mut body = String::from("{\n  \"bench\": \"conv_engine\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            body,
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}}}",
            e.name, e.median_ns
        );
        body.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        body,
        "  ],\n  \"conv_speedup_naive_over_gemm\": {conv_speedup:.2},\n  \"suffix_speedup_sparse_over_densify\": {{\n"
    );
    for (i, (s, x)) in suffix_speedups.iter().enumerate() {
        let _ = write!(body, "    \"{:.0}pct\": {x:.2}", s * 100.0);
        body.push_str(if i + 1 < suffix_speedups.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        body,
        "  }},\n  \"key_over_predicted_frame\": {:.2}\n}}\n",
        key_ns / pred_ns
    );
    let path = "BENCH_conv.json";
    match std::fs::write(path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
