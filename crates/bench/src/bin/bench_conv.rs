//! Produces `BENCH_conv.json` — the committed performance trajectory of the
//! convolution engine (naive vs im2col+GEMM), the sparse-aware suffix
//! (skip-zero vs densify-then-dense), the RFBME early-exit fast path, and
//! the serial vs pipelined AMC executors.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p eva2-bench --bin bench_conv
//! ```
//!
//! Set `EVA2_BENCH_QUICK=1` for a seconds-long reduced-sampling run (noisier
//! absolute numbers; the tracked ratios stay meaningful). The measurement
//! methodology lives in [`eva2_bench::trajectory`].

use eva2_bench::trajectory::{measure, Mode};

fn main() {
    let mode = if std::env::var_os("EVA2_BENCH_QUICK").is_some() {
        Mode::Quick
    } else {
        Mode::Full
    };
    let m = measure(mode);
    let path = "BENCH_conv.json";
    match std::fs::write(path, m.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
