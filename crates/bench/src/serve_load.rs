//! The `BENCH_serve.json` measurement suite: closed-loop serving load
//! against the worker-pool engine, shared by the `bench_serve` trajectory
//! writer and the `bench_gate` CI regression gate.
//!
//! Where [`crate::trajectory`] times microkernels and single frames, this
//! suite drives the `eva2_core::serve::Engine` with the
//! [`eva2_video::load::LoadGenerator`] traffic model — hundreds of
//! decorrelated streams with staggered, heavy-tailed scene cuts — and
//! reports serving-level figures:
//!
//! - **streams-per-core at the SLO**: the largest stream count whose p99
//!   per-frame latency stays under the 33.3 ms real-time budget (30 fps)
//!   with one worker. A frame's latency is its tick's wall duration: the
//!   engine admits and completes a whole tick batch together, so every
//!   frame in the batch waits for the batch.
//! - **p50/p99 per-frame latency** at that operating point.
//! - **per-session memory** (audited footprint, steady state under load).
//! - **single-worker overhead**: serial `AmcExecutor` oracles over the
//!   one-worker engine on identical traffic. The engine's admission,
//!   budgeting, and outcome bookkeeping must be nearly free — the gate
//!   holds this ratio *strictly* above [`STRICT_OVERHEAD_FLOOR`]
//!   (≤ ~10% overhead), on any host, because one thread vs one thread
//!   divides the machine out.
//! - **threaded scaling** (`serve_threaded_over_serial`): the same traffic
//!   against a multi-worker engine. Advisory per the PR-3 rule — its value
//!   is a property of the measuring host's core topology (on the 1-CPU CI
//!   container it sits *below* 1.0, since threads only add scheduling
//!   overhead there).

use crate::trajectory::{Entry, Mode};
use eva2_cnn::zoo;
use eva2_core::executor::{AmcConfig, AmcExecutor};
use eva2_core::serve::{Engine, EngineLimits};
use eva2_tensor::GrayImage;
use eva2_video::load::{LoadConfig, LoadGenerator};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Strict floor for `serial_over_single_worker_engine`: the one-worker
/// engine may cost at most ~10% over the serial oracles (ratio ≥ 1/1.1).
pub const STRICT_OVERHEAD_FLOOR: f64 = 0.90;

/// The per-frame latency SLO: one 30 fps frame interval.
pub const SLO_MS: f64 = 100.0 / 3.0;

/// Sampling plan for the serving suite. [`Mode::Full`] is the committed
/// trajectory; [`Mode::Quick`] is CI; the unit tests use a micro plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePlan {
    /// Paired passes for the ratio figures; the median per-pass ratio is
    /// reported.
    pub passes: usize,
    /// Serving ticks per pass (one frame per stream per tick).
    pub ticks: usize,
    /// First stream count tried in the SLO ramp.
    pub ramp_start: usize,
    /// Stream-count ceiling for the SLO ramp (doubling from `ramp_start`).
    pub ramp_cap: usize,
    /// Stream count used for the overhead/scaling ratio measurements.
    pub ratio_streams: usize,
    /// Worker count for the threaded-scaling ratio.
    pub threaded_workers: usize,
}

impl ServePlan {
    /// The plan for a mode: Full = committed trajectory, Quick = CI gate.
    pub fn for_mode(mode: Mode) -> Self {
        match mode {
            Mode::Full => Self {
                passes: 7,
                ticks: 30,
                ramp_start: 16,
                ramp_cap: 1024,
                ratio_streams: 8,
                threaded_workers: 4,
            },
            Mode::Quick => Self {
                passes: 5,
                ticks: 8,
                ramp_start: 16,
                ramp_cap: 256,
                ratio_streams: 4,
                threaded_workers: 4,
            },
        }
    }
}

/// The full measurement set backing `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeMeasurements {
    /// Per-level and per-figure raw entries, in measurement order.
    pub entries: Vec<Entry>,
    /// Largest ramp level whose p99 frame latency met the SLO (one worker).
    pub streams_per_core_at_slo: f64,
    /// Median per-frame latency at that operating point, microseconds.
    pub p50_frame_latency_us: f64,
    /// p99 per-frame latency at that operating point, microseconds.
    pub p99_frame_latency_us: f64,
    /// Mean audited per-session footprint under load, bytes.
    pub per_session_bytes: f64,
    /// Serial oracles over the one-worker engine on identical traffic
    /// (strict: engine bookkeeping must be nearly free, ~1.0).
    pub serial_over_single_worker_engine: f64,
    /// Serial oracles over the multi-worker engine (advisory: host
    /// topology decides this — below 1.0 on a single-CPU container).
    pub serve_threaded_over_serial: f64,
    /// Worker count the threaded ratio used.
    pub threaded_workers: usize,
}

/// One speedup ratio the CI gate compares, same shape as
/// [`crate::trajectory::TrackedRatio`] (re-exported for the gate loop).
pub use crate::trajectory::TrackedRatio;

/// Renders `ticks` frames of `streams`-wide traffic up front so generator
/// cost never pollutes serving timings.
fn render_traffic(streams: usize, ticks: usize) -> Vec<Vec<GrayImage>> {
    let mut gen = LoadGenerator::new(LoadConfig::new(streams, 48, 48));
    (0..ticks)
        .map(|_| gen.tick().into_iter().map(|f| f.image).collect())
        .collect()
}

/// One engine pass over pre-rendered traffic. Returns per-tick wall times
/// (nanoseconds) and the mean per-session footprint after the last tick.
fn engine_pass(
    net: &Arc<eva2_cnn::network::Network>,
    config: AmcConfig,
    workers: usize,
    traffic: &[Vec<GrayImage>],
) -> (Vec<u64>, f64) {
    let streams = traffic.first().map_or(0, Vec::len);
    let limits = EngineLimits::builder()
        .worker_threads(workers)
        .build()
        .expect("valid worker count");
    let mut engine =
        Engine::with_limits(Arc::clone(net), config, limits).expect("valid serving config");
    let mut sessions: Vec<_> = (0..streams)
        .map(|_| {
            engine
                .open_session()
                .expect("unlimited engine has capacity")
        })
        .collect();
    let mut tick_ns = Vec::with_capacity(traffic.len());
    for tick in traffic {
        let start = Instant::now();
        let outcomes = engine.process_batch(sessions.iter_mut().zip(tick.iter()));
        tick_ns.push(start.elapsed().as_nanos() as u64);
        debug_assert!(outcomes.iter().all(|o| o.is_served()));
        std::hint::black_box(&outcomes);
    }
    let bytes =
        sessions.iter().map(|s| s.memory_footprint()).sum::<usize>() as f64 / streams.max(1) as f64;
    (tick_ns, bytes)
}

/// One serial-oracle pass: an independent `AmcExecutor` per stream, frames
/// processed back to back. Returns total wall nanoseconds.
fn serial_pass(
    net: &Arc<eva2_cnn::network::Network>,
    config: AmcConfig,
    traffic: &[Vec<GrayImage>],
) -> u64 {
    let streams = traffic.first().map_or(0, Vec::len);
    let mut oracles: Vec<_> = (0..streams)
        .map(|_| AmcExecutor::try_new(net, config).expect("valid AMC config"))
        .collect();
    let start = Instant::now();
    for tick in traffic {
        for (oracle, image) in oracles.iter_mut().zip(tick.iter()) {
            std::hint::black_box(oracle.process(image));
        }
    }
    start.elapsed().as_nanos() as u64
}

fn median(mut xs: Vec<u64>) -> f64 {
    xs.sort_unstable();
    xs[xs.len() / 2] as f64
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64
}

/// Runs the serving suite under `plan`, printing one line per figure.
pub fn measure_plan(plan: ServePlan) -> ServeMeasurements {
    let mut entries: Vec<Entry> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>14.1} ns");
        entries.push(Entry {
            name: name.to_string(),
            median_ns: ns,
        });
    };

    let net = Arc::new(zoo::tiny_fasterm(0).network);
    let config = AmcConfig::default();
    let slo_ns = SLO_MS * 1e6;

    // ------------------------------------------------------------------
    // SLO ramp: double the stream count until one worker misses the p99
    // latency budget. One closed-loop pass per level (the figure is an
    // operating point, not a microbenchmark).
    // ------------------------------------------------------------------
    let mut streams_at_slo = 0usize;
    let mut p50_ns = 0.0;
    let mut p99_ns = 0.0;
    let mut level = plan.ramp_start.max(1);
    loop {
        let traffic = render_traffic(level, plan.ticks);
        let (mut tick_ns, _) = engine_pass(&net, config, 1, &traffic);
        tick_ns.sort_unstable();
        let (p50, p99) = (percentile(&tick_ns, 0.50), percentile(&tick_ns, 0.99));
        record(&format!("serve/tick_p99/{level}_streams"), p99);
        let met = p99 <= slo_ns;
        println!(
            "  {level} streams: p50 {:.2} ms, p99 {:.2} ms — {}",
            p50 / 1e6,
            p99 / 1e6,
            if met { "within SLO" } else { "MISSED SLO" }
        );
        if met {
            streams_at_slo = level;
            p50_ns = p50;
            p99_ns = p99;
        } else if streams_at_slo > 0 {
            break;
        } else {
            // Even the smallest fleet misses: report its latencies so the
            // trajectory still carries the observed operating point.
            p50_ns = p50;
            p99_ns = p99;
            break;
        }
        if level >= plan.ramp_cap {
            break;
        }
        level *= 2;
    }
    println!(
        "streams per core at {SLO_MS:.1} ms SLO: {streams_at_slo} (p50 {:.2} ms, p99 {:.2} ms)",
        p50_ns / 1e6,
        p99_ns / 1e6
    );

    // ------------------------------------------------------------------
    // Overhead + scaling ratios on a fixed fleet, replaying identical
    // pre-rendered traffic. Passes are *paired*: each pass runs the serial
    // oracles, the one-worker engine, and the threaded engine back to
    // back and records the per-pass ratios; the median ratio is reported.
    // Pairing matters on a noisy shared container — run-to-run wall-time
    // drift of ±15% is routine, but adjacent runs see the same weather,
    // so the per-pass ratio divides it out.
    // ------------------------------------------------------------------
    let traffic = render_traffic(plan.ratio_streams, plan.ticks);
    // Warmup: touch every path once so first-pass cold caches and lazy
    // page faults do not land inside a single side of a pair.
    serial_pass(&net, config, &traffic);
    engine_pass(&net, config, 1, &traffic);
    engine_pass(&net, config, plan.threaded_workers, &traffic);

    let mut serial_runs = Vec::with_capacity(plan.passes);
    let mut engine1_runs = Vec::with_capacity(plan.passes);
    let mut threaded_runs = Vec::with_capacity(plan.passes);
    let mut overhead_ratios = Vec::with_capacity(plan.passes);
    let mut scaling_ratios = Vec::with_capacity(plan.passes);
    let mut session_bytes = 0.0;
    for _ in 0..plan.passes {
        let serial_ns = serial_pass(&net, config, &traffic);
        let (tick_ns, bytes) = engine_pass(&net, config, 1, &traffic);
        let engine1_ns: u64 = tick_ns.iter().sum();
        session_bytes = bytes;
        let (tick_ns, _) = engine_pass(&net, config, plan.threaded_workers, &traffic);
        let threaded_ns: u64 = tick_ns.iter().sum();
        serial_runs.push(serial_ns);
        engine1_runs.push(engine1_ns);
        threaded_runs.push(threaded_ns);
        overhead_ratios.push(serial_ns as f64 / engine1_ns as f64);
        scaling_ratios.push(serial_ns as f64 / threaded_ns as f64);
    }
    record("serve/ratio_fleet/serial_oracles", median(serial_runs));
    record("serve/ratio_fleet/engine_1worker", median(engine1_runs));
    record(
        &format!("serve/ratio_fleet/engine_{}workers", plan.threaded_workers),
        median(threaded_runs),
    );

    let serial_over_single_worker_engine = median_f64(overhead_ratios);
    let serve_threaded_over_serial = median_f64(scaling_ratios);
    println!(
        "single-worker engine overhead: serial/engine = {serial_over_single_worker_engine:.3}x \
         (strict floor {STRICT_OVERHEAD_FLOOR})"
    );
    println!(
        "threaded scaling ({} workers): serial/threaded = {serve_threaded_over_serial:.3}x \
         (advisory: host-topology-dependent)",
        plan.threaded_workers
    );
    println!("per-session footprint under load: {session_bytes:.0} bytes");

    ServeMeasurements {
        entries,
        streams_per_core_at_slo: streams_at_slo as f64,
        p50_frame_latency_us: p50_ns / 1e3,
        p99_frame_latency_us: p99_ns / 1e3,
        per_session_bytes: session_bytes,
        serial_over_single_worker_engine,
        serve_threaded_over_serial,
        threaded_workers: plan.threaded_workers,
    }
}

/// Runs the serving suite for a mode (see [`ServePlan::for_mode`]).
pub fn measure(mode: Mode) -> ServeMeasurements {
    measure_plan(ServePlan::for_mode(mode))
}

impl ServeMeasurements {
    /// Renders the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        let mut body = String::from("{\n  \"bench\": \"serve_engine\",\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                body,
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}}}",
                e.name, e.median_ns
            );
            body.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            body,
            "  ],\n  \"slo_ms\": {SLO_MS:.1},\n  \"streams_per_core_at_slo\": {:.0},\n  \"p50_frame_latency_us\": {:.1},\n  \"p99_frame_latency_us\": {:.1},\n  \"per_session_bytes\": {:.0},\n  \"serial_over_single_worker_engine\": {:.3},\n  \"serve_threaded_over_serial\": {:.3},\n  \"threaded_workers\": {}\n}}\n",
            self.streams_per_core_at_slo,
            self.p50_frame_latency_us,
            self.p99_frame_latency_us,
            self.per_session_bytes,
            self.serial_over_single_worker_engine,
            self.serve_threaded_over_serial,
            self.threaded_workers
        );
        body
    }

    /// The serving ratios the CI gate tracks against `BENCH_serve.json`.
    ///
    /// Only `serial_over_single_worker_engine` is strict: one thread vs
    /// one thread on identical traffic divides the host out, and the gate
    /// additionally enforces the absolute [`STRICT_OVERHEAD_FLOOR`] on it.
    /// Everything else is an operating point of the measuring host
    /// (stream capacity, core topology, allocator) — advisory per the
    /// PR-3 rule.
    pub fn tracked_ratios(&self) -> Vec<TrackedRatio> {
        vec![
            TrackedRatio {
                key: "serial_over_single_worker_engine".to_string(),
                value: self.serial_over_single_worker_engine,
                advisory: false,
            },
            TrackedRatio {
                key: "serve_threaded_over_serial".to_string(),
                value: self.serve_threaded_over_serial,
                advisory: true,
            },
            TrackedRatio {
                key: "streams_per_core_at_slo".to_string(),
                value: self.streams_per_core_at_slo,
                advisory: true,
            },
            TrackedRatio {
                key: "per_session_bytes".to_string(),
                value: self.per_session_bytes,
                advisory: true,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::extract_number;

    /// A plan small enough for unit tests: two ramp levels, two streams.
    fn micro() -> ServePlan {
        ServePlan {
            passes: 1,
            ticks: 2,
            ramp_start: 2,
            ramp_cap: 4,
            ratio_streams: 2,
            threaded_workers: 2,
        }
    }

    #[test]
    fn micro_plan_produces_finite_figures_and_roundtripping_json() {
        let m = measure_plan(micro());
        assert!(m.serial_over_single_worker_engine.is_finite());
        assert!(m.serial_over_single_worker_engine > 0.0);
        assert!(m.serve_threaded_over_serial > 0.0);
        assert!(m.p99_frame_latency_us >= m.p50_frame_latency_us);
        assert!(m.per_session_bytes > 0.0);
        let json = m.to_json();
        for ratio in m.tracked_ratios() {
            let read = extract_number(&json, &ratio.key)
                .unwrap_or_else(|| panic!("{} missing from JSON", ratio.key));
            let tol = ratio.value.abs().max(1.0) * 0.01;
            assert!(
                (read - ratio.value).abs() <= tol,
                "{}: wrote {} read {read}",
                ratio.key,
                ratio.value
            );
        }
        assert_eq!(extract_number(&json, "slo_ms"), Some(33.3));
    }

    #[test]
    fn only_single_worker_overhead_is_strict() {
        let m = measure_plan(micro());
        let strict: Vec<String> = m
            .tracked_ratios()
            .into_iter()
            .filter(|r| !r.advisory)
            .map(|r| r.key)
            .collect();
        assert_eq!(strict, vec!["serial_over_single_worker_engine"]);
    }
}
