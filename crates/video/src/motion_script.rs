//! Motion scripts: how objects and the camera move over time.
//!
//! AMC's adaptive key-frame policies (§II-C4) trade accuracy for energy based
//! on *how predictable* the scene's motion is, so the generator needs motion
//! regimes spanning smooth/predictable to chaotic/unpredictable.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A deterministic motion trajectory sampled at 30 fps frame indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum MotionScript {
    /// No motion.
    #[default]
    Static,
    /// Constant velocity in pixels/frame.
    Linear {
        /// Vertical velocity (pixels per frame, positive = down).
        vy: f32,
        /// Horizontal velocity (pixels per frame, positive = right).
        vx: f32,
    },
    /// Sinusoidal oscillation around the start position.
    Oscillate {
        /// Vertical amplitude in pixels.
        amp_y: f32,
        /// Horizontal amplitude in pixels.
        amp_x: f32,
        /// Period in frames.
        period: f32,
        /// Phase offset in radians.
        phase: f32,
    },
    /// Piecewise-linear motion that changes direction every `hold` frames —
    /// the "chaotic" regime that forces adaptive policies to spend key
    /// frames.
    Jitter {
        /// Maximum per-segment speed in pixels/frame.
        max_speed: f32,
        /// Frames between direction changes.
        hold: usize,
        /// Seed for the per-segment direction stream.
        seed: u64,
    },
}

impl MotionScript {
    /// Displacement from the start position at frame `t`.
    pub fn displacement(&self, t: usize) -> (f32, f32) {
        match *self {
            MotionScript::Static => (0.0, 0.0),
            MotionScript::Linear { vy, vx } => (vy * t as f32, vx * t as f32),
            MotionScript::Oscillate {
                amp_y,
                amp_x,
                period,
                phase,
            } => {
                let theta = 2.0 * std::f32::consts::PI * t as f32 / period + phase;
                (amp_y * theta.sin(), amp_x * theta.cos())
            }
            MotionScript::Jitter {
                max_speed,
                hold,
                seed,
            } => {
                // Integrate segment velocities up to frame t. Segments are
                // derived deterministically from the seed so the trajectory
                // is reproducible without storing state.
                let hold = hold.max(1);
                let mut dy = 0.0f32;
                let mut dx = 0.0f32;
                let segments = t / hold;
                for s in 0..=segments {
                    let (vy, vx) = Self::segment_velocity(seed, s, max_speed);
                    let frames_in_segment = if s < segments {
                        hold
                    } else {
                        t - segments * hold
                    };
                    dy += vy * frames_in_segment as f32;
                    dx += vx * frames_in_segment as f32;
                }
                (dy, dx)
            }
        }
    }

    /// Instantaneous velocity at frame `t` (displacement difference).
    pub fn velocity(&self, t: usize) -> (f32, f32) {
        let (y1, x1) = self.displacement(t + 1);
        let (y0, x0) = self.displacement(t);
        (y1 - y0, x1 - x0)
    }

    fn segment_velocity(seed: u64, segment: usize, max_speed: f32) -> (f32, f32) {
        use rand::SeedableRng;
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (segment as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let angle = rng.gen_range(0.0..std::f32::consts::TAU);
        let speed = rng.gen_range(0.2..max_speed.max(0.21));
        (speed * angle.sin(), speed * angle.cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_never_moves() {
        let m = MotionScript::Static;
        for t in 0..100 {
            assert_eq!(m.displacement(t), (0.0, 0.0));
        }
    }

    #[test]
    fn linear_accumulates() {
        let m = MotionScript::Linear { vy: 1.5, vx: -0.5 };
        assert_eq!(m.displacement(0), (0.0, 0.0));
        assert_eq!(m.displacement(4), (6.0, -2.0));
        assert_eq!(m.velocity(7), (1.5, -0.5));
    }

    #[test]
    fn oscillate_returns_to_origin_each_period() {
        let m = MotionScript::Oscillate {
            amp_y: 4.0,
            amp_x: 2.0,
            period: 10.0,
            phase: 0.0,
        };
        let (dy0, dx0) = m.displacement(0);
        let (dy1, dx1) = m.displacement(10);
        assert!((dy0 - dy1).abs() < 1e-4);
        assert!((dx0 - dx1).abs() < 1e-4);
    }

    #[test]
    fn jitter_is_deterministic() {
        let m = MotionScript::Jitter {
            max_speed: 2.0,
            hold: 3,
            seed: 7,
        };
        assert_eq!(m.displacement(17), m.displacement(17));
        // Different seeds diverge.
        let m2 = MotionScript::Jitter {
            max_speed: 2.0,
            hold: 3,
            seed: 8,
        };
        assert_ne!(m.displacement(17), m2.displacement(17));
    }

    #[test]
    fn jitter_changes_direction() {
        let m = MotionScript::Jitter {
            max_speed: 2.0,
            hold: 2,
            seed: 3,
        };
        let v0 = m.velocity(0);
        let v5 = m.velocity(5);
        assert_ne!(v0, v5, "jitter should change velocity across segments");
    }

    #[test]
    fn jitter_displacement_is_continuous() {
        // Consecutive displacements differ by at most max_speed * sqrt(2).
        let m = MotionScript::Jitter {
            max_speed: 2.0,
            hold: 4,
            seed: 11,
        };
        for t in 0..50 {
            let (vy, vx) = m.velocity(t);
            let speed = (vy * vy + vx * vx).sqrt();
            assert!(speed <= 2.0 * 1.5, "speed {speed} exceeds bound at t={t}");
        }
    }

    #[test]
    fn default_is_static() {
        assert_eq!(MotionScript::default(), MotionScript::Static);
    }
}
