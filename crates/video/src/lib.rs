//! Synthetic live-video generator with ground truth.
//!
//! The EVA² paper evaluates on the YouTube-BoundingBoxes dataset — 240,000
//! annotated videos. That corpus (and the pretrained networks that consume
//! it) is unavailable here, so this crate builds the closest synthetic
//! equivalent: procedurally generated video whose statistics exercise exactly
//! the phenomena AMC's accuracy depends on. Each of the paper's three
//! "sufficient conditions for precision" (§II-B) has a controllable violation:
//!
//! * **Condition 1 (perfect motion estimation)** is violated by
//!   [`scene::SceneConfig::lighting_drift`], sensor noise, occluders that
//!   reveal "new pixels", and object appearance/disappearance.
//! * **Condition 2 (convolution-aligned motion)** is violated by sub-stride
//!   object velocities and independently moving objects inside one receptive
//!   field.
//! * **Condition 3 (nonlinearities preserve motion)** is violated by any
//!   motion at all once the CNN contains max-pooling, which every network in
//!   the zoo does.
//!
//! Ground truth (object class and bounding box) is exact by construction, so
//! the accuracy metrics in `eva2-cnn::metrics` (top-1, mAP) are meaningful.
//!
//! # Example
//!
//! ```
//! use eva2_video::scene::{Scene, SceneConfig};
//!
//! let mut scene = Scene::new(SceneConfig::classification(64, 64), 42);
//! let clip = scene.render_clip(10);
//! assert_eq!(clip.frames.len(), 10);
//! let truth = &clip.frames[0].truth;
//! assert!(truth.class < eva2_video::sprite::SpriteKind::COUNT);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bbox;
pub mod dataset;
pub mod faults;
pub mod frame;
pub mod load;
pub mod motion_script;
pub mod scene;
pub mod sprite;

pub use bbox::BoundingBox;
pub use faults::{FaultEvent, FaultKind, FaultScript, FaultyScene};
pub use frame::{Clip, Frame, GroundTruth};
pub use load::{LoadConfig, LoadFrame, LoadGenerator};
pub use scene::{Scene, SceneConfig};
pub use sprite::SpriteKind;
