//! Closed-loop serving load: many decorrelated streams with staggered,
//! heavy-tailed scene cuts.
//!
//! The serving benchmark (`BENCH_serve.json`) needs traffic that looks like
//! "heavy traffic from millions of users" scaled down: hundreds of
//! independent camera streams whose key frames do *not* arrive in
//! lock-step. [`LoadGenerator`] synthesizes that from the existing
//! [`Scene`] machinery:
//!
//! - **Decorrelation.** Stream `s` uses [`SceneConfig::streaming`] variant
//!   `s`, so neighbouring streams differ in motion regime, camera pan, and
//!   distractor count; each is seeded independently, so pixel content never
//!   repeats across streams.
//! - **Staggered cuts.** Each stream's first scene cut lands at a
//!   per-stream offset, so cuts (which force key frames) spread over ticks
//!   instead of synchronising into one worst-case batch.
//! - **Heavy-tailed cut arrivals.** Gaps between cuts are Pareto-ish
//!   (`gap = min_gap · u^(-1/α)`): most scenes last close to `min_cut_gap`
//!   frames, but a heavy tail of long-lived scenes keeps steady-state
//!   predicted-frame traffic flowing while bursts of cuts stress the
//!   key-frame path — the bimodal load the paper's adaptive key-frame
//!   policy is built for.
//!
//! Everything is deterministic in the [`LoadConfig`]: two generators with
//! identical configs emit bit-identical frames and cut schedules, so
//! benchmark runs are reproducible and the bit-identity harnesses can
//! replay the exact traffic.

use crate::scene::{Scene, SceneConfig};
use eva2_tensor::GrayImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of a serving-load fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Number of concurrent streams.
    pub streams: usize,
    /// Frame height in pixels (must match the served network's input).
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Minimum frames between scene cuts on one stream.
    pub min_cut_gap: usize,
    /// Pareto tail index for cut gaps; smaller is heavier-tailed. Must be
    /// positive.
    pub cut_alpha: f32,
    /// Master seed; every stream derives its own generators from it.
    pub seed: u64,
}

impl LoadConfig {
    /// A fleet of `streams` streams of `height`×`width` video with default
    /// cut statistics (minimum gap 8 frames, tail index 1.5).
    pub fn new(streams: usize, height: usize, width: usize) -> Self {
        Self {
            streams,
            height,
            width,
            min_cut_gap: 8,
            cut_alpha: 1.5,
            seed: 0x5EED_10AD,
        }
    }

    /// Returns a copy with the given master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One frame of generated load.
#[derive(Debug, Clone)]
pub struct LoadFrame {
    /// Index of the stream this frame belongs to.
    pub stream: usize,
    /// The rendered frame.
    pub image: GrayImage,
    /// `true` when a scene cut happened at this tick: the frame is the
    /// first of a brand-new scene, so the engine should be forced into a
    /// key frame by its residual check.
    pub cut: bool,
}

/// Per-stream state: the live scene, its local clock, and the cut schedule.
#[derive(Debug, Clone)]
struct StreamSource {
    variant: usize,
    scene: Scene,
    /// Frame index within the current scene.
    phase: usize,
    /// Scenes consumed so far (bumped on every cut).
    epoch: u64,
    /// Global tick of the next scene cut.
    next_cut: usize,
    /// Drives cut-gap sampling only; pixel content comes from the scene's
    /// own seed.
    rng: ChaCha8Rng,
}

/// Deterministic multi-stream load generator. Call [`LoadGenerator::tick`]
/// once per serving tick to get one new frame per stream.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    config: LoadConfig,
    sources: Vec<StreamSource>,
    tick: usize,
}

impl LoadGenerator {
    /// Builds the fleet described by `config`.
    ///
    /// # Panics
    ///
    /// Panics when `cut_alpha` is not positive or `min_cut_gap` is zero.
    pub fn new(config: LoadConfig) -> Self {
        assert!(
            config.cut_alpha > 0.0,
            "load cut_alpha must be positive, got {}",
            config.cut_alpha
        );
        assert!(config.min_cut_gap > 0, "load min_cut_gap must be nonzero");
        let sources = (0..config.streams)
            .map(|s| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    config.seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let scene = Scene::new(
                    SceneConfig::streaming(config.height, config.width, s),
                    stream_scene_seed(config.seed, s, 0),
                );
                // Stagger: spread first cuts across the fleet so they do
                // not synchronise into one worst-case key-frame batch.
                let stagger = s % config.min_cut_gap.max(1);
                let next_cut = stagger + pareto_gap(&mut rng, config.min_cut_gap, config.cut_alpha);
                StreamSource {
                    variant: s,
                    scene,
                    phase: 0,
                    epoch: 0,
                    next_cut,
                    rng,
                }
            })
            .collect();
        Self {
            config,
            sources,
            tick: 0,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &LoadConfig {
        &self.config
    }

    /// The current global tick (frames emitted per stream so far).
    pub fn tick_count(&self) -> usize {
        self.tick
    }

    /// Advances the clock one tick and renders one frame per stream.
    pub fn tick(&mut self) -> Vec<LoadFrame> {
        let t = self.tick;
        self.tick += 1;
        let config = self.config;
        self.sources
            .iter_mut()
            .enumerate()
            .map(|(s, src)| {
                let mut cut = false;
                if t >= src.next_cut {
                    // Swap in a brand-new scene: a different streaming
                    // variant and a fresh seed, so the first frame shares
                    // nothing with the old scene.
                    src.epoch += 1;
                    src.variant = src.variant.wrapping_add(config.streams.max(1));
                    src.scene = Scene::new(
                        SceneConfig::streaming(config.height, config.width, src.variant),
                        stream_scene_seed(config.seed, s, src.epoch),
                    );
                    src.phase = 0;
                    src.next_cut =
                        t + pareto_gap(&mut src.rng, config.min_cut_gap, config.cut_alpha);
                    cut = true;
                }
                let image = src.scene.render(src.phase).image;
                src.phase += 1;
                LoadFrame {
                    stream: s,
                    image,
                    cut,
                }
            })
            .collect()
    }
}

/// Seed for stream `s`'s `epoch`-th scene, decorrelated across both axes.
fn stream_scene_seed(master: u64, stream: usize, epoch: u64) -> u64 {
    master
        .wrapping_mul(0x100_0000_01B3)
        .wrapping_add((stream as u64) << 32)
        .wrapping_add(epoch)
}

/// Samples a Pareto-ish cut gap: `min_gap · u^(-1/alpha)` for uniform
/// `u ∈ (0, 1]`, clamped so one draw cannot freeze a stream forever.
fn pareto_gap(rng: &mut ChaCha8Rng, min_gap: usize, alpha: f32) -> usize {
    let u: f32 = rng.gen_range(f32::EPSILON..=1.0);
    let gap = min_gap as f32 * u.powf(-1.0 / alpha);
    (gap as usize).clamp(min_gap, min_gap.saturating_mul(1000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadConfig {
        LoadConfig::new(4, 24, 24)
    }

    #[test]
    fn load_is_deterministic() {
        let mut a = LoadGenerator::new(tiny());
        let mut b = LoadGenerator::new(tiny());
        for _ in 0..20 {
            let fa = a.tick();
            let fb = b.tick();
            assert_eq!(fa.len(), fb.len());
            for (x, y) in fa.iter().zip(&fb) {
                assert_eq!(x.stream, y.stream);
                assert_eq!(x.cut, y.cut);
                assert_eq!(x.image.as_slice(), y.image.as_slice());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LoadGenerator::new(tiny());
        let mut b = LoadGenerator::new(tiny().with_seed(7));
        let fa = a.tick();
        let fb = b.tick();
        assert_ne!(fa[0].image.as_slice(), fb[0].image.as_slice());
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut g = LoadGenerator::new(tiny());
        let frames = g.tick();
        for w in frames.windows(2) {
            assert_ne!(
                w[0].image.as_slice(),
                w[1].image.as_slice(),
                "neighbouring streams must not render identical content"
            );
        }
    }

    #[test]
    fn cuts_are_staggered_and_change_the_scene() {
        let mut g = LoadGenerator::new(LoadConfig::new(6, 24, 24));
        let mut cut_ticks: Vec<Vec<usize>> = vec![Vec::new(); 6];
        let mut last: Vec<Option<GrayImage>> = vec![None; 6];
        for t in 0..200 {
            for f in g.tick() {
                if f.cut {
                    cut_ticks[f.stream].push(t);
                    if let Some(prev) = &last[f.stream] {
                        // A cut must decorrelate the pixels.
                        let diff: usize = prev
                            .as_slice()
                            .iter()
                            .zip(f.image.as_slice())
                            .filter(|(a, b)| a != b)
                            .count();
                        assert!(
                            diff > prev.as_slice().len() / 4,
                            "scene cut changed only {diff} pixels"
                        );
                    }
                }
                last[f.stream] = Some(f.image);
            }
        }
        // Every stream cuts eventually, and first cuts are not synchronised.
        let firsts: Vec<usize> = cut_ticks
            .iter()
            .map(|c| *c.first().expect("every stream cuts within 200 ticks"))
            .collect();
        let distinct: std::collections::BTreeSet<usize> = firsts.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "first cuts all landed on tick {firsts:?}"
        );
    }

    #[test]
    fn cut_gaps_are_heavy_tailed() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let gaps: Vec<usize> = (0..4000).map(|_| pareto_gap(&mut rng, 8, 1.5)).collect();
        let min = *gaps.iter().min().unwrap();
        let max = *gaps.iter().max().unwrap();
        assert!(min >= 8, "gap below the floor: {min}");
        assert!(max >= 8 * 20, "no heavy tail: max gap {max}");
        let mean = gaps.iter().sum::<usize>() as f64 / gaps.len() as f64;
        let mut sorted = gaps.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(
            mean > median * 1.2,
            "distribution not right-skewed: mean {mean:.1} median {median:.1}"
        );
    }
}
