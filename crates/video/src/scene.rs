//! Scene composition: background, objects, camera, occluders, noise.

use crate::bbox::BoundingBox;
use crate::frame::{Clip, Frame, GroundTruth};
use crate::motion_script::MotionScript;
use crate::sprite::SpriteKind;
use eva2_tensor::GrayImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How energetically the scene moves. Determines the sampled
/// [`MotionScript`]s for the object and camera.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MotionRegime {
    /// Nothing moves; the ideal case for memoization.
    Frozen,
    /// Slow, smooth motion (sub-pixel to ~1 px/frame). AMC predictions are
    /// usually accurate here.
    #[default]
    Smooth,
    /// Moderate motion (~1–2 px/frame) with occasional direction changes.
    Medium,
    /// Fast, erratic motion that violates the paper's condition 1/2 often;
    /// adaptive policies should respond with more key frames.
    Chaotic,
}

/// Configuration for a synthetic scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame height in pixels.
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Side length of the primary object's bounding box in pixels.
    pub object_size: f32,
    /// Motion energy of the scene.
    pub regime: MotionRegime,
    /// When `true`, the camera pans (global translation of the background
    /// and all objects) — the case where "most pixels change abruptly" that
    /// motivates motion compensation over delta updates (§II).
    pub camera_pan: bool,
    /// When `true`, a moving occluder bar sweeps the scene, producing
    /// de-occlusion "new pixels" (condition 1 violation, Fig 4c).
    pub occluder: bool,
    /// Per-frame additive intensity drift amplitude (lighting change).
    pub lighting_drift: f32,
    /// Standard deviation of per-pixel Gaussian sensor noise (intensity
    /// units).
    pub noise_std: f32,
    /// Number of additional distractor sprites.
    pub distractors: usize,
    /// Peak-to-peak contrast of the procedural background texture.
    pub background_contrast: u8,
}

impl SceneConfig {
    /// Configuration mirroring the frame-classification task: one dominant
    /// centred object, mild motion.
    pub fn classification(height: usize, width: usize) -> Self {
        Self {
            height,
            width,
            object_size: height as f32 * 0.55,
            regime: MotionRegime::Smooth,
            camera_pan: false,
            occluder: false,
            lighting_drift: 1.5,
            noise_std: 2.0,
            distractors: 0,
            background_contrast: 60,
        }
    }

    /// Configuration mirroring the object-detection task: a smaller object
    /// travelling through the frame, distractors, camera pan.
    pub fn detection(height: usize, width: usize) -> Self {
        Self {
            height,
            width,
            object_size: height as f32 * 0.35,
            regime: MotionRegime::Medium,
            camera_pan: true,
            occluder: false,
            lighting_drift: 1.5,
            noise_std: 2.0,
            distractors: 1,
            background_contrast: 60,
        }
    }

    /// Configuration for one stream of a serving-load mix
    /// ([`crate::load`]): `variant` cycles motion regime, camera pan,
    /// occluders, and distractor count so a fleet of streams built with
    /// consecutive variants is decorrelated — no two neighbours share
    /// motion energy, and their key-frame pressure differs.
    pub fn streaming(height: usize, width: usize, variant: usize) -> Self {
        let regime = match variant % 4 {
            0 => MotionRegime::Smooth,
            1 => MotionRegime::Medium,
            2 => MotionRegime::Chaotic,
            _ => MotionRegime::Smooth,
        };
        Self {
            height,
            width,
            object_size: height as f32 * 0.45,
            regime,
            camera_pan: !variant.is_multiple_of(2),
            occluder: variant.is_multiple_of(5),
            lighting_drift: 1.5,
            noise_std: 2.0,
            distractors: variant % 3,
            background_contrast: 60,
        }
    }

    /// Returns a copy with the given motion regime.
    pub fn with_regime(mut self, regime: MotionRegime) -> Self {
        self.regime = regime;
        self
    }

    /// Returns a copy with the occluder enabled or disabled.
    pub fn with_occluder(mut self, occluder: bool) -> Self {
        self.occluder = occluder;
        self
    }
}

#[derive(Debug, Clone)]
struct SceneObject {
    kind: SpriteKind,
    start_y: f32,
    start_x: f32,
    motion: MotionScript,
    intensity: u8,
    size: f32,
}

/// A deterministic synthetic scene: render any frame index on demand.
///
/// All randomness is fixed at construction from the seed, so two `Scene`s
/// with identical config and seed produce bit-identical video — a property
/// the reproducibility tests rely on.
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    seed: u64,
    primary: SceneObject,
    distractors: Vec<SceneObject>,
    camera: MotionScript,
    occluder_motion: MotionScript,
    background_phase: (f32, f32, f32, f32),
}

impl Scene {
    /// Builds a scene whose object class, start position, and motion are
    /// sampled deterministically from `seed`.
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let kind = SpriteKind::from_class_id(rng.gen_range(0..SpriteKind::COUNT));
        let margin = config.object_size * 0.6;
        let h = config.height as f32;
        let w = config.width as f32;
        let start_y = rng.gen_range(margin..(h - margin).max(margin + 0.1));
        let start_x = rng.gen_range(margin..(w - margin).max(margin + 0.1));
        let motion = Self::sample_motion(&mut rng, config.regime, seed);
        let primary = SceneObject {
            kind,
            start_y,
            start_x,
            motion,
            intensity: rng.gen_range(190..=255),
            size: config.object_size,
        };
        let distractors = (0..config.distractors)
            .map(|i| {
                let kind = SpriteKind::from_class_id(rng.gen_range(0..SpriteKind::COUNT));
                SceneObject {
                    kind,
                    start_y: rng.gen_range(0.0..h),
                    start_x: rng.gen_range(0.0..w),
                    motion: Self::sample_motion(&mut rng, config.regime, seed ^ (i as u64 + 1)),
                    intensity: rng.gen_range(120..=180),
                    size: config.object_size * rng.gen_range(0.4..0.7),
                }
            })
            .collect();
        let camera = if config.camera_pan {
            // Camera pans smoothly regardless of object regime.
            MotionScript::Linear {
                vy: rng.gen_range(-0.4..0.4),
                vx: rng.gen_range(-0.8..0.8),
            }
        } else {
            MotionScript::Static
        };
        let occluder_motion = MotionScript::Linear {
            vy: 0.0,
            vx: rng.gen_range(0.8..1.6),
        };
        let background_phase = (
            rng.gen_range(0.0..std::f32::consts::TAU),
            rng.gen_range(0.0..std::f32::consts::TAU),
            rng.gen_range(0.05..0.15),
            rng.gen_range(0.05..0.15),
        );
        Self {
            config,
            seed,
            primary,
            distractors,
            camera,
            occluder_motion,
            background_phase,
        }
    }

    fn sample_motion(rng: &mut ChaCha8Rng, regime: MotionRegime, seed: u64) -> MotionScript {
        match regime {
            MotionRegime::Frozen => MotionScript::Static,
            MotionRegime::Smooth => MotionScript::Linear {
                vy: rng.gen_range(-0.5..0.5),
                vx: rng.gen_range(-0.8..0.8),
            },
            MotionRegime::Medium => {
                if rng.gen_bool(0.5) {
                    MotionScript::Linear {
                        vy: rng.gen_range(-1.2..1.2),
                        vx: rng.gen_range(-1.8..1.8),
                    }
                } else {
                    MotionScript::Oscillate {
                        amp_y: rng.gen_range(2.0..6.0),
                        amp_x: rng.gen_range(2.0..8.0),
                        period: rng.gen_range(20.0..60.0),
                        phase: rng.gen_range(0.0..std::f32::consts::TAU),
                    }
                }
            }
            MotionRegime::Chaotic => MotionScript::Jitter {
                max_speed: rng.gen_range(2.0..4.0),
                hold: rng.gen_range(2..5),
                seed,
            },
        }
    }

    /// The scene's configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Ground-truth class of the primary object.
    pub fn class(&self) -> usize {
        self.primary.kind.class_id()
    }

    fn background_pixel(&self, y: f32, x: f32) -> f32 {
        let (p0, p1, fy, fx) = self.background_phase;
        let v = (y * fy + p0).sin() + (x * fx + p1).cos() + ((y + x) * fy * 0.5).sin();
        // v in [-3, 3] → centre around 110 with configured contrast.
        110.0 + v / 3.0 * self.config.background_contrast as f32 / 2.0
    }

    /// Object position (centre) at frame `t`, in frame coordinates after
    /// camera compensation.
    fn object_center(&self, obj: &SceneObject, t: usize) -> (f32, f32) {
        let (oy, ox) = obj.motion.displacement(t);
        let (cy, cx) = self.camera.displacement(t);
        // Camera motion moves the whole world opposite to the pan direction.
        let h = self.config.height as f32;
        let w = self.config.width as f32;
        // Reflect positions back into the frame so long clips keep the
        // object visible (mirror-wrap).
        let y = reflect(obj.start_y + oy - cy, h);
        let x = reflect(obj.start_x + ox - cx, w);
        (y, x)
    }

    /// Renders the frame at index `t` with ground truth.
    pub fn render(&self, t: usize) -> Frame {
        let cfg = &self.config;
        let (cam_dy, cam_dx) = self.camera.displacement(t);
        let lighting = cfg.lighting_drift * (t as f32 * 0.21).sin();

        let mut image = GrayImage::from_fn(cfg.height, cfg.width, |y, x| {
            let v = self.background_pixel(y as f32 + cam_dy, x as f32 + cam_dx) + lighting;
            v.clamp(0.0, 255.0) as u8
        });

        for d in &self.distractors {
            let (dy, dx) = self.object_center(d, t);
            d.kind.render(&mut image, dy, dx, d.size, d.intensity);
        }

        let (py, px) = self.object_center(&self.primary, t);
        self.primary.kind.render(
            &mut image,
            py,
            px,
            self.primary.size,
            self.primary.intensity,
        );

        let full = BoundingBox::from_center(py, px, self.primary.size, self.primary.size);
        let bbox = full.clamped(cfg.height, cfg.width);
        let mut visibility = if full.area() > 0.0 {
            bbox.area() / full.area()
        } else {
            0.0
        };

        // Occluder: a vertical bar sweeping the frame, drawn on top.
        if cfg.occluder {
            let (_, occ_dx) = self.occluder_motion.displacement(t);
            let bar_w = (cfg.width as f32 * 0.18).max(2.0);
            let bar_x = (occ_dx).rem_euclid(cfg.width as f32 + bar_w) - bar_w;
            for y in 0..cfg.height {
                for x in 0..cfg.width {
                    let xf = x as f32;
                    if xf >= bar_x && xf < bar_x + bar_w {
                        image.set(y, x, 30);
                    }
                }
            }
            let bar = BoundingBox::new(0.0, bar_x, cfg.height as f32, bar_w);
            let occluded = bbox.intersection(&bar);
            if bbox.area() > 0.0 {
                visibility *= 1.0 - occluded / bbox.area();
            }
        }

        // Sensor noise: deterministic per (seed, t).
        if cfg.noise_std > 0.0 {
            let mut rng = ChaCha8Rng::seed_from_u64(
                self.seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            );
            for p in image.as_mut_slice() {
                // Cheap approximate Gaussian: sum of two uniforms, centred.
                let n: f32 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                let v = *p as f32 + n * cfg.noise_std;
                *p = v.clamp(0.0, 255.0) as u8;
            }
        }

        Frame {
            image,
            truth: GroundTruth {
                class: self.primary.kind.class_id(),
                bbox,
                visibility,
            },
        }
    }

    /// Renders frames `0..len` as a [`Clip`].
    pub fn render_clip(&mut self, len: usize) -> Clip {
        Clip {
            frames: (0..len).map(|t| self.render(t)).collect(),
            scene_seed: self.seed,
        }
    }
}

/// Reflects `v` into `[0, max)` by mirroring at the boundaries.
fn reflect(v: f32, max: f32) -> f32 {
    if max <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * max;
    let m = v.rem_euclid(period);
    if m < max {
        m
    } else {
        period - m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_is_deterministic() {
        let cfg = SceneConfig::detection(48, 48);
        let a = Scene::new(cfg.clone(), 9).render(5);
        let b = Scene::new(cfg, 9).render(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SceneConfig::detection(48, 48);
        let a = Scene::new(cfg.clone(), 1).render(0);
        let b = Scene::new(cfg, 2).render(0);
        assert_ne!(a.image, b.image);
    }

    #[test]
    fn truth_bbox_is_inside_frame() {
        let cfg = SceneConfig::detection(48, 64);
        for seed in 0..20 {
            let scene = Scene::new(cfg.clone(), seed);
            for t in [0usize, 7, 30] {
                let f = scene.render(t);
                let b = f.truth.bbox;
                assert!(b.y >= 0.0 && b.x >= 0.0);
                assert!(b.y + b.h <= 48.0 + 1e-3);
                assert!(b.x + b.w <= 64.0 + 1e-3);
            }
        }
    }

    #[test]
    fn object_pixels_are_brighter_than_background() {
        let mut cfg = SceneConfig::classification(48, 48);
        cfg.noise_std = 0.0;
        let scene = Scene::new(cfg, 5);
        let f = scene.render(0);
        let (cy, cx) = f.truth.bbox.center();
        // The sprite's own pixels may be hollow at the exact centre, so probe
        // the bbox for at least one bright pixel.
        let mut found_bright = false;
        let y0 = f.truth.bbox.y as usize;
        let x0 = f.truth.bbox.x as usize;
        for y in y0..(y0 + f.truth.bbox.h as usize).min(48) {
            for x in x0..(x0 + f.truth.bbox.w as usize).min(48) {
                if f.image.get(y, x) >= 190 {
                    found_bright = true;
                }
            }
        }
        assert!(found_bright, "no bright object pixel near ({cy},{cx})");
    }

    #[test]
    fn frozen_regime_only_changes_by_noise_and_lighting() {
        let mut cfg = SceneConfig::classification(32, 32).with_regime(MotionRegime::Frozen);
        cfg.noise_std = 0.0;
        cfg.lighting_drift = 0.0;
        let scene = Scene::new(cfg, 3);
        assert_eq!(scene.render(0), scene.render(10));
    }

    #[test]
    fn smooth_regime_moves_the_object() {
        let mut cfg = SceneConfig::detection(48, 48).with_regime(MotionRegime::Smooth);
        cfg.noise_std = 0.0;
        cfg.camera_pan = false;
        // Find a seed whose sampled velocity is non-negligible.
        let mut moved = false;
        for seed in 0..10 {
            let scene = Scene::new(cfg.clone(), seed);
            let b0 = scene.render(0).truth.bbox;
            let b9 = scene.render(9).truth.bbox;
            let (dy, dx) = (b9.y - b0.y, b9.x - b0.x);
            if dy.abs() + dx.abs() > 1.0 {
                moved = true;
                break;
            }
        }
        assert!(moved, "no seed produced visible motion");
    }

    #[test]
    fn occluder_reduces_visibility_sometimes() {
        let cfg = SceneConfig::detection(48, 48).with_occluder(true);
        let scene = Scene::new(cfg, 4);
        let mut saw_occlusion = false;
        for t in 0..120 {
            if scene.render(t).truth.visibility < 0.95 {
                saw_occlusion = true;
                break;
            }
        }
        assert!(saw_occlusion, "occluder never covered the object");
    }

    #[test]
    fn render_clip_matches_individual_renders() {
        let mut scene = Scene::new(SceneConfig::classification(32, 32), 7);
        let clip = scene.render_clip(4);
        assert_eq!(clip.len(), 4);
        assert_eq!(clip.frames[2], scene.render(2));
        assert_eq!(clip.scene_seed, 7);
    }

    #[test]
    fn reflect_stays_in_bounds() {
        for v in [-100.0f32, -3.2, 0.0, 5.0, 47.9, 96.0, 1000.0] {
            let r = reflect(v, 48.0);
            assert!((0.0..48.0).contains(&r), "reflect({v}) = {r}");
        }
    }

    #[test]
    fn camera_pan_shifts_background() {
        let mut cfg = SceneConfig::detection(48, 48);
        cfg.noise_std = 0.0;
        cfg.occluder = false;
        cfg.lighting_drift = 0.0;
        cfg.distractors = 0;
        let scene = Scene::new(cfg, 2);
        let f0 = scene.render(0);
        let f20 = scene.render(20);
        // With a panning camera, a majority of pixels change by t=20.
        let changed = f0
            .image
            .as_slice()
            .iter()
            .zip(f20.image.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            changed > f0.image.as_slice().len() / 4,
            "only {changed} pixels changed"
        );
    }
}
