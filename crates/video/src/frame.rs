//! Frames, ground truth, and clips.

use crate::bbox::BoundingBox;
use eva2_tensor::GrayImage;
use serde::{Deserialize, Serialize};

/// Per-frame ground truth for the synthetic tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Class id of the primary object (a [`crate::SpriteKind`] index).
    pub class: usize,
    /// Bounding box of the primary object, clamped to the frame.
    pub bbox: BoundingBox,
    /// Fraction of the object's bounding box that is unoccluded and inside
    /// the frame, in `[0, 1]`. Detection metrics can skip frames where the
    /// object is mostly invisible, mirroring dataset annotation policy.
    pub visibility: f32,
}

/// One video frame: pixels plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Luma pixels.
    pub image: GrayImage,
    /// Ground-truth annotation.
    pub truth: GroundTruth,
}

/// A contiguous sequence of frames from one scene, decoded at a fixed rate.
///
/// The paper decodes YTBB at 30 fps, "corresponding to a 33 ms time gap
/// between each frame" (§IV-B); [`Clip::FRAME_MS`] preserves that constant so
/// experiment code can speak in the paper's milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clip {
    /// The frames in presentation order.
    pub frames: Vec<Frame>,
    /// Identifier of the generating scene (for reproducibility reports).
    pub scene_seed: u64,
}

impl Clip {
    /// Milliseconds between consecutive frames at 30 fps.
    pub const FRAME_MS: f32 = 1000.0 / 30.0;

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the clip holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The time gap in milliseconds between frame indices `a` and `b`.
    pub fn gap_ms(a: usize, b: usize) -> f32 {
        (b as f32 - a as f32).abs() * Self::FRAME_MS
    }

    /// Converts a paper-style millisecond gap to a frame-index gap, rounding
    /// to the nearest frame (e.g. 198 ms → 6 frames, 33 ms → 1 frame).
    pub fn frames_for_gap_ms(ms: f32) -> usize {
        (ms / Self::FRAME_MS).round().max(1.0) as usize
    }

    /// Iterator over the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }
}

impl<'a> IntoIterator for &'a Clip {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

// Frames move across threads in the pipelined executor (main thread →
// RFBME worker) and in any future batched/sharded front-end; keep the
// hand-off types thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GrayImage>();
    assert_send_sync::<Frame>();
    assert_send_sync::<Clip>();
    assert_send_sync::<GroundTruth>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_constants_match_paper() {
        // 33 ms is one frame at 30 fps; 198 ms is six.
        assert_eq!(Clip::frames_for_gap_ms(33.0), 1);
        assert_eq!(Clip::frames_for_gap_ms(198.0), 6);
        // AlexNet's huge memoization gap: 4891 ms ≈ 147 frames.
        assert_eq!(Clip::frames_for_gap_ms(4891.0), 147);
    }

    #[test]
    fn gap_ms_is_symmetric() {
        assert_eq!(Clip::gap_ms(3, 9), Clip::gap_ms(9, 3));
        assert!((Clip::gap_ms(0, 6) - 200.0).abs() < 1.0);
    }

    #[test]
    fn empty_clip() {
        let c = Clip {
            frames: vec![],
            scene_seed: 0,
        };
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.iter().count(), 0);
    }
}
