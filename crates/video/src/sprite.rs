//! Procedural sprites: the object vocabulary of the synthetic dataset.
//!
//! Each [`SpriteKind`] is one "class" for the classification and detection
//! tasks. Shapes are chosen to be distinguishable by small CNNs yet share
//! enough low-level structure (edges, corners, curves) that the networks must
//! actually learn features rather than trivial pixel statistics.

use eva2_tensor::GrayImage;
use serde::{Deserialize, Serialize};

/// The set of renderable object classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpriteKind {
    /// Filled square.
    Square,
    /// Filled disc.
    Disc,
    /// Plus/cross shape.
    Cross,
    /// Hollow ring.
    Ring,
    /// Filled triangle (apex up).
    Triangle,
    /// Two vertical bars.
    Bars,
    /// Hollow square frame.
    Frame,
    /// Diagonal stripe pattern inside a square.
    Stripes,
}

impl SpriteKind {
    /// Number of distinct sprite classes.
    pub const COUNT: usize = 8;

    /// All sprite kinds, indexable by class id.
    pub const ALL: [SpriteKind; Self::COUNT] = [
        SpriteKind::Square,
        SpriteKind::Disc,
        SpriteKind::Cross,
        SpriteKind::Ring,
        SpriteKind::Triangle,
        SpriteKind::Bars,
        SpriteKind::Frame,
        SpriteKind::Stripes,
    ];

    /// The class id (index into [`SpriteKind::ALL`]).
    pub fn class_id(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }

    /// Sprite for a class id, wrapping modulo [`SpriteKind::COUNT`].
    pub fn from_class_id(id: usize) -> Self {
        Self::ALL[id % Self::COUNT]
    }

    /// Coverage test: is the point `(v, u)` (normalized to `[-1, 1]` within
    /// the sprite's bounding box) inside the shape?
    ///
    /// Analytic coverage lets sprites render at any size and any fractional
    /// position, which is what produces sub-stride (condition 2 violating)
    /// motion in the video generator.
    pub fn covers(self, v: f32, u: f32) -> bool {
        let av = v.abs();
        let au = u.abs();
        match self {
            SpriteKind::Square => av <= 0.9 && au <= 0.9,
            SpriteKind::Disc => v * v + u * u <= 0.81,
            SpriteKind::Cross => (au <= 0.3 && av <= 0.9) || (av <= 0.3 && au <= 0.9),
            SpriteKind::Ring => {
                let r2 = v * v + u * u;
                (0.36..=0.81).contains(&r2)
            }
            SpriteKind::Triangle => {
                // Apex at (v=-0.9); base along v=+0.9.
                (-0.9..=0.9).contains(&v) && au <= (v + 0.9) / 2.0
            }
            SpriteKind::Bars => {
                av <= 0.9 && ((-0.8..=-0.3).contains(&u) || (0.3..=0.8).contains(&u))
            }
            SpriteKind::Frame => {
                let inside = av <= 0.9 && au <= 0.9;
                let hollow = av <= 0.5 && au <= 0.5;
                inside && !hollow
            }
            SpriteKind::Stripes => av <= 0.9 && au <= 0.9 && ((v + u) * 2.5).rem_euclid(2.0) < 1.0,
        }
    }

    /// Renders the sprite into `img` centred at `(cy, cx)` with the given
    /// `size` (bounding-box side length in pixels) and `intensity`.
    ///
    /// Pixels are *blended by coverage supersampling* (2×2) so that
    /// fractional positions shift the rendered mass smoothly — a requirement
    /// for meaningful sub-pixel motion estimation tests.
    pub fn render(self, img: &mut GrayImage, cy: f32, cx: f32, size: f32, intensity: u8) {
        let half = size / 2.0;
        let y0 = (cy - half).floor().max(0.0) as usize;
        let x0 = (cx - half).floor().max(0.0) as usize;
        let y1 = ((cy + half).ceil() as usize).min(img.height());
        let x1 = ((cx + half).ceil() as usize).min(img.width());
        const SUB: [f32; 2] = [0.25, 0.75];
        for y in y0..y1 {
            for x in x0..x1 {
                let mut cover = 0u32;
                for sy in SUB {
                    for sx in SUB {
                        let v = (y as f32 + sy - cy) / half;
                        let u = (x as f32 + sx - cx) / half;
                        if self.covers(v, u) {
                            cover += 1;
                        }
                    }
                }
                if cover > 0 {
                    let base = img.get(y, x) as u32;
                    let blended = (base * (4 - cover) + intensity as u32 * cover) / 4;
                    img.set(y, x, blended as u8);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_id_roundtrip() {
        for (i, &k) in SpriteKind::ALL.iter().enumerate() {
            assert_eq!(k.class_id(), i);
            assert_eq!(SpriteKind::from_class_id(i), k);
        }
        assert_eq!(
            SpriteKind::from_class_id(SpriteKind::COUNT + 1),
            SpriteKind::ALL[1]
        );
    }

    #[test]
    fn all_shapes_cover_center_or_known_point() {
        // Every sprite covers at least one canonical point.
        assert!(SpriteKind::Square.covers(0.0, 0.0));
        assert!(SpriteKind::Disc.covers(0.0, 0.0));
        assert!(SpriteKind::Cross.covers(0.0, 0.0));
        assert!(SpriteKind::Ring.covers(0.7, 0.0));
        assert!(SpriteKind::Triangle.covers(0.5, 0.0));
        assert!(SpriteKind::Bars.covers(0.0, 0.5));
        assert!(SpriteKind::Frame.covers(0.8, 0.0));
        assert!(SpriteKind::Stripes.covers(0.1, 0.1));
    }

    #[test]
    fn shapes_do_not_cover_outside_unit_box() {
        for k in SpriteKind::ALL {
            assert!(!k.covers(1.5, 0.0), "{k:?} leaked outside");
            assert!(!k.covers(0.0, -1.5), "{k:?} leaked outside");
        }
    }

    #[test]
    fn ring_is_hollow() {
        assert!(!SpriteKind::Ring.covers(0.0, 0.0));
        assert!(!SpriteKind::Frame.covers(0.0, 0.0));
    }

    #[test]
    fn shapes_are_pairwise_distinct() {
        // Sample a coarse grid; every pair of shapes must differ somewhere.
        let grid: Vec<(f32, f32)> = (-9..=9)
            .flat_map(|v| (-9..=9).map(move |u| (v as f32 / 10.0, u as f32 / 10.0)))
            .collect();
        for (i, &a) in SpriteKind::ALL.iter().enumerate() {
            for &b in &SpriteKind::ALL[i + 1..] {
                let differs = grid.iter().any(|&(v, u)| a.covers(v, u) != b.covers(v, u));
                assert!(differs, "{a:?} and {b:?} are identical on the grid");
            }
        }
    }

    #[test]
    fn render_puts_mass_inside_bbox() {
        let mut img = GrayImage::zeros(32, 32);
        SpriteKind::Disc.render(&mut img, 16.0, 16.0, 12.0, 255);
        assert!(img.get(16, 16) > 200);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(16, 2), 0);
    }

    #[test]
    fn render_clips_at_frame_edge() {
        let mut img = GrayImage::zeros(16, 16);
        // Mostly off-frame to the top-left; must not panic.
        SpriteKind::Square.render(&mut img, 1.0, 1.0, 12.0, 200);
        assert!(img.get(0, 0) > 0);
    }

    #[test]
    fn fractional_position_shifts_mass() {
        let mut a = GrayImage::zeros(32, 32);
        let mut b = GrayImage::zeros(32, 32);
        SpriteKind::Square.render(&mut a, 16.0, 16.0, 10.0, 255);
        SpriteKind::Square.render(&mut b, 16.0, 16.5, 10.0, 255);
        assert_ne!(a, b, "half-pixel shift must change the rendering");
    }
}
