//! Dataset builders: reproducible collections of labelled clips.
//!
//! The paper trains on 1/25 of YTBB's training split and evaluates on fresh
//! validation/test subsets (§IV-B). The builders here mirror that protocol
//! with disjoint seed ranges: [`Split::Train`], [`Split::Validation`], and
//! [`Split::Test`] never share a scene seed, so no experiment can leak test
//! video into training.

use crate::frame::Clip;
use crate::scene::{MotionRegime, Scene, SceneConfig};
use serde::{Deserialize, Serialize};

/// Dataset split with a disjoint seed space per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Training scenes (seed space 0).
    Train,
    /// Validation scenes used for threshold calibration (seed space 1).
    Validation,
    /// Held-out test scenes used for reported numbers (seed space 2).
    Test,
}

impl Split {
    fn seed_base(self) -> u64 {
        match self {
            Split::Train => 0x0000_0000_0000_0000,
            Split::Validation => 0x1000_0000_0000_0000,
            Split::Test => 0x2000_0000_0000_0000,
        }
    }
}

/// Options for building a clip collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Scene template (size, task, noise, ...).
    pub scene: SceneConfig,
    /// Number of clips to generate.
    pub clips: usize,
    /// Frames per clip.
    pub clip_len: usize,
    /// Base seed mixed with the split's seed space.
    pub seed: u64,
    /// When set, overrides the scene regime per clip in round-robin order,
    /// giving the collection a controlled mixture of motion energies.
    pub regime_mix: Vec<MotionRegime>,
}

impl DatasetConfig {
    /// A classification dataset: centred sprites, mild motion.
    pub fn classification(clips: usize, clip_len: usize) -> Self {
        Self {
            scene: SceneConfig::classification(32, 32),
            clips,
            clip_len,
            seed: 0xC1A5, // "class"
            regime_mix: vec![
                MotionRegime::Frozen,
                MotionRegime::Smooth,
                MotionRegime::Smooth,
                MotionRegime::Medium,
            ],
        }
    }

    /// A detection dataset: travelling sprites, camera pan, distractors.
    pub fn detection(clips: usize, clip_len: usize) -> Self {
        Self {
            scene: SceneConfig::detection(48, 48),
            clips,
            clip_len,
            seed: 0xDE7, // "det"
            regime_mix: vec![
                MotionRegime::Smooth,
                MotionRegime::Medium,
                MotionRegime::Medium,
                MotionRegime::Chaotic,
            ],
        }
    }
}

/// Generates the clip collection for a split.
pub fn build(config: &DatasetConfig, split: Split) -> Vec<Clip> {
    (0..config.clips)
        .map(|i| {
            let seed =
                split.seed_base() ^ config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
            let mut scene_cfg = config.scene.clone();
            if !config.regime_mix.is_empty() {
                scene_cfg.regime = config.regime_mix[i % config.regime_mix.len()];
            }
            Scene::new(scene_cfg, seed).render_clip(config.clip_len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_disjoint() {
        let cfg = DatasetConfig {
            scene: SceneConfig::classification(16, 16),
            clips: 3,
            clip_len: 2,
            seed: 5,
            regime_mix: vec![],
        };
        let train = build(&cfg, Split::Train);
        let test = build(&cfg, Split::Test);
        for a in &train {
            for b in &test {
                assert_ne!(a.scene_seed, b.scene_seed);
            }
        }
    }

    #[test]
    fn build_is_reproducible() {
        let cfg = DatasetConfig {
            scene: SceneConfig::classification(16, 16),
            clips: 2,
            clip_len: 3,
            seed: 11,
            regime_mix: vec![MotionRegime::Smooth],
        };
        let a = build(&cfg, Split::Validation);
        let b = build(&cfg, Split::Validation);
        assert_eq!(a, b);
    }

    #[test]
    fn regime_mix_round_robins() {
        let cfg = DatasetConfig {
            scene: SceneConfig::classification(16, 16).with_regime(MotionRegime::Chaotic),
            clips: 4,
            clip_len: 1,
            seed: 1,
            regime_mix: vec![MotionRegime::Frozen, MotionRegime::Chaotic],
        };
        let clips = build(&cfg, Split::Train);
        assert_eq!(clips.len(), 4);
        // Frozen clips with zero drift/noise would be static; here we only
        // check the builder produced the requested count and is seed-stable.
        assert_eq!(clips[0].len(), 1);
    }

    #[test]
    fn class_coverage_is_broad() {
        // With enough clips every sprite class should appear.
        let cfg = DatasetConfig {
            scene: SceneConfig::classification(16, 16),
            clips: 64,
            clip_len: 1,
            seed: 3,
            regime_mix: vec![],
        };
        let clips = build(&cfg, Split::Train);
        let mut seen = [false; crate::sprite::SpriteKind::COUNT];
        for c in &clips {
            seen[c.frames[0].truth.class] = true;
        }
        assert!(seen.iter().all(|&s| s), "class coverage: {seen:?}");
    }
}
