//! Deterministic fault injection for serving-lifecycle tests.
//!
//! A serving engine in front of live cameras sees more than clean video:
//! frames are dropped by the transport, corrupted by the sensor, blown out
//! by lighting, resized by a renegotiating encoder, and cut hard between
//! shots. The lifecycle hardening in `eva2-core::serve` promises
//! *correct-frame-or-typed-error, never a panic* under all of these; this
//! module generates the inputs that prove it.
//!
//! Everything is deterministic per `(seed, t)`: the pixels a fault produces
//! at stream time `t` depend only on the script seed and `t`, never on how
//! many frames were rendered before it or in what order. That makes fault
//! runs replayable (the property the integration suite's bit-identity
//! checks rely on) and lets two differently-configured engines consume the
//! exact same damaged stream.
//!
//! # Example
//!
//! ```
//! use eva2_video::faults::{FaultKind, FaultScript, FaultyScene};
//! use eva2_video::scene::{Scene, SceneConfig};
//!
//! let script = FaultScript::generate(9, 30, 0.3);
//! let scene = Scene::new(SceneConfig::detection(48, 48), 7);
//! let mut a = FaultyScene::new(scene.clone(), script.clone());
//! let mut b = FaultyScene::new(scene, script);
//! for t in 0..30 {
//!     // Replayable: two iterations of the same faulty stream are equal.
//!     assert_eq!(a.next_event().frame, b.next_event().frame);
//! }
//! ```

use crate::frame::Frame;
use crate::scene::Scene;
use eva2_tensor::GrayImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One kind of injected fault, applied to a single stream time step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The frame never arrives (transport loss): the client submits
    /// nothing this tick, so the session sees a larger inter-frame gap.
    DropFrame,
    /// Salt-and-pepper sensor corruption over `fraction` of the pixels.
    Corrupt {
        /// Fraction of pixels replaced with random values, in `[0, 1]`.
        fraction: f32,
    },
    /// Sensor blowout: every pixel saturates to full intensity, erasing
    /// all texture RFBME could match against.
    Saturate,
    /// Mid-stream resolution change (an encoder renegotiation): the frame
    /// arrives at half the configured height and width. The engine must
    /// reject it with a typed geometry error, not feed it to the CNN.
    Downscale,
    /// Hard cut: from this time step on, the stream shows an unrelated
    /// scene (content discontinuity with no explanatory motion).
    SceneCut,
}

impl FaultKind {
    /// Applies the fault to `image`, the clean frame at stream time `t`
    /// under script seed `seed`. Returns `None` when the frame is dropped.
    /// Pure in `(self, image, seed, t)` — replaying a time step yields the
    /// same pixels.
    ///
    /// [`FaultKind::SceneCut`] is persistent and therefore handled by
    /// [`FaultyScene`], which swaps the underlying scene; applied directly
    /// it passes the frame through unchanged.
    pub fn apply(&self, image: &GrayImage, seed: u64, t: usize) -> Option<GrayImage> {
        match self {
            FaultKind::DropFrame => None,
            FaultKind::Corrupt { fraction } => {
                let mut rng = rng_for(seed, t);
                let mut out = image.clone();
                let threshold = (f64::from(fraction.clamp(0.0, 1.0)) * 1e6) as u64;
                for px in out.as_mut_slice() {
                    if rng.gen_range(0..1_000_000u64) < threshold {
                        *px = rng.gen_range(0..=255u32) as u8;
                    }
                }
                Some(out)
            }
            FaultKind::Saturate => Some(GrayImage::filled(image.height(), image.width(), 255)),
            FaultKind::Downscale => {
                let (h, w) = (image.height().max(2) / 2, image.width().max(2) / 2);
                Some(GrayImage::from_fn(h, w, |y, x| image.get(y * 2, x * 2)))
            }
            FaultKind::SceneCut => Some(image.clone()),
        }
    }
}

/// A schedule of faults keyed by stream time, plus the seed that fixes
/// every random choice the faults make.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    seed: u64,
    /// `(t, fault)` pairs, strictly increasing in `t`.
    events: Vec<(usize, FaultKind)>,
}

impl FaultScript {
    /// An explicit script. Events are sorted by time; of several events at
    /// one time, the first given wins.
    pub fn new(seed: u64, mut events: Vec<(usize, FaultKind)>) -> Self {
        events.sort_by_key(|(t, _)| *t);
        events.dedup_by_key(|(t, _)| *t);
        Self { seed, events }
    }

    /// A script with no faults (the control arm of a fault experiment).
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Generates a random script over `len` frames where each frame after
    /// the first is faulty with probability `fault_rate`, the kind drawn
    /// uniformly. Deterministic in `(seed, len, fault_rate)`. Frame 0 is
    /// never faulted so every stream has a valid first key frame.
    pub fn generate(seed: u64, len: usize, fault_rate: f64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let per_million = (fault_rate.clamp(0.0, 1.0) * 1e6) as u64;
        let mut events = Vec::new();
        for t in 1..len {
            if rng.gen_range(0..1_000_000u64) >= per_million {
                continue;
            }
            let kind = match rng.gen_range(0..5u32) {
                0 => FaultKind::DropFrame,
                1 => FaultKind::Corrupt { fraction: 0.25 },
                2 => FaultKind::Saturate,
                3 => FaultKind::Downscale,
                _ => FaultKind::SceneCut,
            };
            events.push((t, kind));
        }
        Self { seed, events }
    }

    /// The script's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault scheduled at stream time `t`, if any.
    pub fn fault_at(&self, t: usize) -> Option<FaultKind> {
        self.events.iter().find(|(et, _)| *et == t).map(|(_, k)| *k)
    }

    /// All scheduled events in time order.
    pub fn events(&self) -> &[(usize, FaultKind)] {
        &self.events
    }
}

/// What a faulty stream delivered for one time step.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Stream time of this step.
    pub t: usize,
    /// The fault injected at this step, if any.
    pub fault: Option<FaultKind>,
    /// The delivered frame; `None` when the frame was dropped.
    pub frame: Option<Frame>,
}

/// A [`Scene`] viewed through a [`FaultScript`]: renders clean frames and
/// damages them on schedule. [`FaultKind::SceneCut`] is applied here (and
/// only here) by swapping the underlying scene for one seeded from
/// `(script seed, t)`, so the discontinuity persists for the rest of the
/// stream the way a real shot change does.
///
/// Iteration is deterministic: the struct's only state is the stream
/// clock and the currently active scene, both fixed by `(scene, script)`.
#[derive(Debug, Clone)]
pub struct FaultyScene {
    scene: Scene,
    script: FaultScript,
    t: usize,
    /// Stream time at which the active scene started (its local t=0).
    origin: usize,
}

impl FaultyScene {
    /// Wraps `scene` with `script`.
    pub fn new(scene: Scene, script: FaultScript) -> Self {
        Self {
            scene,
            script,
            t: 0,
            origin: 0,
        }
    }

    /// The script driving this stream.
    pub fn script(&self) -> &FaultScript {
        &self.script
    }

    /// Produces the next time step and advances the stream clock.
    pub fn next_event(&mut self) -> FaultEvent {
        let t = self.t;
        self.t += 1;
        let fault = self.script.fault_at(t);
        if let Some(FaultKind::SceneCut) = fault {
            // A hard cut: every later frame comes from the new scene.
            let cut_seed = self.script.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.scene = Scene::new(self.scene.config().clone(), cut_seed);
            self.origin = t;
        }
        let clean = self.scene.render(t - self.origin);
        let frame = match fault {
            None | Some(FaultKind::SceneCut) => Some(clean),
            Some(kind) => kind
                .apply(&clean.image, self.script.seed, t)
                .map(|image| Frame {
                    image,
                    truth: clean.truth.clone(),
                }),
        };
        FaultEvent { t, fault, frame }
    }
}

/// Seeds a per-time-step generator: all randomness a fault uses at stream
/// time `t` comes from here, so replaying a step never depends on what was
/// rendered before it.
fn rng_for(seed: u64, t: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneConfig;

    fn scene() -> Scene {
        Scene::new(SceneConfig::detection(48, 48), 11)
    }

    #[test]
    fn scripts_are_deterministic() {
        let a = FaultScript::generate(5, 40, 0.4);
        let b = FaultScript::generate(5, 40, 0.4);
        assert_eq!(a, b);
        assert!(!a.events().is_empty(), "a 40% rate over 39 frames fires");
        assert!(a.fault_at(0).is_none(), "frame 0 is never faulted");
    }

    #[test]
    fn faulty_streams_replay_bit_identically() {
        let script = FaultScript::generate(9, 25, 0.35);
        let mut a = FaultyScene::new(scene(), script.clone());
        let mut b = FaultyScene::new(scene(), script);
        for _ in 0..25 {
            let (ea, eb) = (a.next_event(), b.next_event());
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn corrupt_changes_only_the_requested_fraction() {
        let clean = scene().render(0).image;
        let noisy = FaultKind::Corrupt { fraction: 0.25 }
            .apply(&clean, 3, 7)
            .unwrap();
        let differing = clean
            .as_slice()
            .iter()
            .zip(noisy.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        let frac = differing as f64 / clean.as_slice().len() as f64;
        // ~25% of pixels are *replaced*; some replacements collide with
        // the original value, so the changed fraction sits a bit below.
        assert!((0.10..=0.30).contains(&frac), "changed fraction {frac}");
    }

    #[test]
    fn saturate_erases_texture_and_downscale_halves_geometry() {
        let clean = scene().render(0).image;
        let flat = FaultKind::Saturate.apply(&clean, 0, 0).unwrap();
        assert!(flat.as_slice().iter().all(|&p| p == 255));
        let small = FaultKind::Downscale.apply(&clean, 0, 0).unwrap();
        assert_eq!((small.height(), small.width()), (24, 24));
        assert!(FaultKind::DropFrame.apply(&clean, 0, 0).is_none());
    }

    #[test]
    fn scene_cut_is_persistent_and_discontinuous() {
        let script = FaultScript::new(1, vec![(3, FaultKind::SceneCut)]);
        let mut faulty = FaultyScene::new(scene(), script);
        let mut control = FaultyScene::new(scene(), FaultScript::clean(1));
        let mut frames = Vec::new();
        let mut clean_frames = Vec::new();
        for _ in 0..6 {
            frames.push(faulty.next_event().frame.unwrap());
            clean_frames.push(control.next_event().frame.unwrap());
        }
        // Identical up to the cut, different from it on.
        assert_eq!(frames[..3], clean_frames[..3]);
        for t in 3..6 {
            assert_ne!(frames[t].image, clean_frames[t].image, "post-cut t={t}");
        }
        // The cut is a *discontinuity*: frame 3 differs far more from
        // frame 2 than consecutive same-scene frames do.
        let cut_sad = frames[2].image.sad(&frames[3].image);
        let smooth_sad = frames[1].image.sad(&frames[2].image);
        assert!(
            cut_sad * 2 > smooth_sad * 3,
            "cut {cut_sad} vs smooth {smooth_sad}"
        );
    }

    #[test]
    fn explicit_scripts_sort_and_dedup() {
        let s = FaultScript::new(
            0,
            vec![
                (9, FaultKind::Saturate),
                (2, FaultKind::DropFrame),
                (9, FaultKind::DropFrame),
            ],
        );
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.events()[0], (2, FaultKind::DropFrame));
        assert_eq!(s.fault_at(9), Some(FaultKind::Saturate));
        assert_eq!(s.fault_at(4), None);
    }
}
