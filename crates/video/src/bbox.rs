//! Axis-aligned bounding boxes and intersection-over-union.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned bounding box in pixel coordinates.
///
/// `y`/`x` is the top-left corner; the box covers rows `y..y+h` and columns
/// `x..x+w`. Coordinates are `f32` because object centres move by fractional
/// amounts between frames.
///
/// # Example
///
/// ```
/// use eva2_video::BoundingBox;
///
/// let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
/// let b = BoundingBox::new(5.0, 5.0, 10.0, 10.0);
/// assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BoundingBox {
    /// Top edge (row).
    pub y: f32,
    /// Left edge (column).
    pub x: f32,
    /// Height in rows.
    pub h: f32,
    /// Width in columns.
    pub w: f32,
}

impl BoundingBox {
    /// Creates a box from its top-left corner and extent.
    pub const fn new(y: f32, x: f32, h: f32, w: f32) -> Self {
        Self { y, x, h, w }
    }

    /// Creates a box from its centre and extent.
    pub fn from_center(cy: f32, cx: f32, h: f32, w: f32) -> Self {
        Self::new(cy - h / 2.0, cx - w / 2.0, h, w)
    }

    /// The box centre `(cy, cx)`.
    pub fn center(&self) -> (f32, f32) {
        (self.y + self.h / 2.0, self.x + self.w / 2.0)
    }

    /// Box area (zero for degenerate boxes).
    pub fn area(&self) -> f32 {
        self.h.max(0.0) * self.w.max(0.0)
    }

    /// Area of the intersection with `other`.
    pub fn intersection(&self, other: &Self) -> f32 {
        let y0 = self.y.max(other.y);
        let x0 = self.x.max(other.x);
        let y1 = (self.y + self.h).min(other.y + other.h);
        let x1 = (self.x + self.w).min(other.x + other.w);
        (y1 - y0).max(0.0) * (x1 - x0).max(0.0)
    }

    /// Intersection over union, in `[0, 1]`. Returns 0 when both boxes are
    /// degenerate.
    pub fn iou(&self, other: &Self) -> f32 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Translates the box by `(dy, dx)`.
    pub fn translated(&self, dy: f32, dx: f32) -> Self {
        Self::new(self.y + dy, self.x + dx, self.h, self.w)
    }

    /// Clamps the box to the frame `height × width`, shrinking as needed.
    pub fn clamped(&self, height: usize, width: usize) -> Self {
        let y0 = self.y.clamp(0.0, height as f32);
        let x0 = self.x.clamp(0.0, width as f32);
        let y1 = (self.y + self.h).clamp(0.0, height as f32);
        let x1 = (self.x + self.w).clamp(0.0, width as f32);
        Self::new(y0, x0, (y1 - y0).max(0.0), (x1 - x0).max(0.0))
    }

    /// Returns `true` when the box has positive area.
    pub fn is_valid(&self) -> bool {
        self.h > 0.0 && self.w > 0.0
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[y={:.1} x={:.1} h={:.1} w={:.1}]",
            self.y, self.x, self.h, self.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BoundingBox::new(2.0, 3.0, 4.0, 5.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::new(10.0, 10.0, 2.0, 2.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let a = BoundingBox::new(0.0, 0.0, 4.0, 4.0);
        let b = BoundingBox::new(2.0, 2.0, 4.0, 4.0);
        // intersection 2x2=4, union 16+16-4=28
        assert!((a.iou(&b) - 4.0 / 28.0).abs() < 1e-6);
    }

    #[test]
    fn center_roundtrip() {
        let b = BoundingBox::from_center(10.0, 20.0, 4.0, 6.0);
        assert_eq!(b.center(), (10.0, 20.0));
        assert_eq!(b.y, 8.0);
        assert_eq!(b.x, 17.0);
    }

    #[test]
    fn clamp_shrinks_to_frame() {
        let b = BoundingBox::new(-2.0, 30.0, 6.0, 6.0).clamped(32, 32);
        assert_eq!(b.y, 0.0);
        assert_eq!(b.h, 4.0);
        assert_eq!(b.x, 30.0);
        assert_eq!(b.w, 2.0);
    }

    #[test]
    fn degenerate_boxes() {
        let z = BoundingBox::new(0.0, 0.0, 0.0, 0.0);
        assert!(!z.is_valid());
        assert_eq!(z.iou(&z), 0.0);
    }

    #[test]
    fn translation_moves_box() {
        let b = BoundingBox::new(1.0, 1.0, 2.0, 2.0).translated(3.0, -1.0);
        assert_eq!(b.y, 4.0);
        assert_eq!(b.x, 0.0);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BoundingBox::new(0.0, 0.0, 5.0, 3.0);
        let b = BoundingBox::new(1.0, 1.0, 4.0, 4.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-6);
    }
}
