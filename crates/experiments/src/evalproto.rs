//! Evaluation protocols shared by the experiment binaries.

use eva2_cnn::metrics::{self, Detection, DetectionResult, NormBox};
use eva2_cnn::network::Network;
use eva2_cnn::zoo::{Task, Workload, ZooNet};
use eva2_core::executor::{AmcConfig, AmcExecutor, WarpMode};
use eva2_core::pipeline::{FrameExecutor, PipelinedExecutor};
use eva2_core::policy::PolicyConfig;
use eva2_core::serve::EngineExecutor;
use eva2_core::target::TargetSelection;
use eva2_core::warp::warp_activation;
use eva2_motion::hornschunck::HornSchunck;
use eva2_motion::lucas_kanade::LucasKanade;
use eva2_motion::rfbme::{Rfbme, SearchParams};
use eva2_motion::MotionEstimator;
use eva2_tensor::interp::Interpolation;
use eva2_tensor::Tensor3;
use eva2_video::frame::{Clip, Frame};
use std::sync::Arc;

/// RFBME search window used throughout the experiments (chosen to cover the
/// synthetic dataset's motion range at its longest gaps).
pub const SEARCH: SearchParams = SearchParams {
    radius: 12,
    step: 1,
};

/// The AMC configuration the paper converges on per workload: motion
/// compensation with bilinear interpolation for the detection networks,
/// plain memoization for AlexNet (§IV-E1).
pub fn amc_config_for(workload: Workload) -> AmcConfig {
    let warp = match workload {
        Workload::AlexNet => WarpMode::Memoize,
        _ => WarpMode::MotionCompensate { bilinear: true },
    };
    AmcConfig {
        target: TargetSelection::Late,
        warp,
        search: SEARCH,
        policy: PolicyConfig::BlockError {
            threshold: 3.0,
            max_gap: 16,
        },
        fixed_point: false,
        sparsity_threshold: 1.0 / 256.0,
        max_residual_error: f32::INFINITY,
        allow_unverified: false,
    }
}

/// Normalized ground-truth box of a frame.
pub fn truth_normbox(frame: &Frame) -> NormBox {
    let h = frame.image.height() as f32;
    let w = frame.image.width() as f32;
    let (cy, cx) = frame.truth.bbox.center();
    NormBox {
        cy: cy / h,
        cx: cx / w,
        h: frame.truth.bbox.h / h,
        w: frame.truth.bbox.w / w,
    }
}

/// Scores a batch of `(output, truth frame)` pairs with the task's metric:
/// top-1 percent for classification, mAP@0.5 percent for detection.
pub fn score(task: Task, outputs: &[(Tensor3, &Frame)]) -> f32 {
    match task {
        Task::Classification => {
            let pairs: Vec<(usize, usize)> = outputs
                .iter()
                .map(|(o, f)| (o.argmax(), f.truth.class))
                .collect();
            metrics::top1_accuracy(&pairs)
        }
        Task::Detection => {
            let results: Vec<DetectionResult> = outputs
                .iter()
                .map(|(o, f)| DetectionResult {
                    prediction: Detection::from_output(o),
                    truth_class: f.truth.class,
                    truth_bbox: truth_normbox(f),
                })
                .collect();
            metrics::mean_average_precision(&results, 0.5)
        }
    }
}

/// Accuracy of plain full-CNN execution on every frame — the paper's `orig`
/// rows and the "new key frame" bars of Fig 14.
pub fn baseline_accuracy(zoo: &ZooNet, clips: &[Clip]) -> f32 {
    let outputs: Vec<(Tensor3, &Frame)> = clips
        .iter()
        .flat_map(|c| c.frames.iter())
        .map(|f| (zoo.network.forward(&f.image.to_tensor()), f))
        .collect();
    score(zoo.task, &outputs)
}

/// How a predicted frame's activation is produced in the fixed-gap protocol
/// (Fig 14 / Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapPredictor {
    /// Ideal: run the full CNN on the predicted frame ("new key frame").
    NewKey,
    /// Worst case: reuse the stale key activation ("old key frame").
    OldKey,
    /// RFBME + activation warping (the EVA² design).
    Rfbme {
        /// Bilinear (true) or nearest-neighbour interpolation.
        bilinear: bool,
    },
    /// Pixel-level Lucas–Kanade flow, averaged per receptive field.
    LucasKanade,
    /// Dense variational flow (FlowNet2-s stand-in), averaged per receptive
    /// field.
    DenseFlow,
}

impl GapPredictor {
    /// Display name matching Fig 14's x-axis.
    pub fn name(&self) -> &'static str {
        match self {
            GapPredictor::NewKey => "(new key frame)",
            GapPredictor::OldKey => "(old key frame)",
            GapPredictor::Rfbme { bilinear: true } => "RFBME",
            GapPredictor::Rfbme { bilinear: false } => "RFBME (nearest)",
            GapPredictor::LucasKanade => "Lucas-Kanade",
            GapPredictor::DenseFlow => "DenseFlow (FlowNet2-s stand-in)",
        }
    }
}

/// Produces the suffix output for a key/predicted frame pair under a
/// predictor, at an explicit target layer.
pub fn predict_output(
    net: &Network,
    target: usize,
    key: &Frame,
    pred: &Frame,
    predictor: GapPredictor,
) -> Tensor3 {
    match predictor {
        GapPredictor::NewKey => net.forward(&pred.image.to_tensor()),
        GapPredictor::OldKey => {
            let act = net.forward_prefix(&key.image.to_tensor(), target);
            net.forward_suffix(&act, target)
        }
        GapPredictor::Rfbme { bilinear } => {
            let rf = net.receptive_field(target);
            let rfbme = Rfbme::new(
                eva2_motion::rfbme::RfGeometry {
                    size: rf.size,
                    stride: rf.stride,
                    padding: rf.padding,
                },
                SEARCH,
            );
            let motion = rfbme.estimate(&key.image, &pred.image);
            let act = net.forward_prefix(&key.image.to_tensor(), target);
            let method = if bilinear {
                Interpolation::Bilinear
            } else {
                Interpolation::NearestNeighbor
            };
            let (warped, _) = warp_activation(&act, &motion.field, rf.stride, method);
            net.forward_suffix(&warped, target)
        }
        GapPredictor::LucasKanade | GapPredictor::DenseFlow => {
            let rf = net.receptive_field(target);
            let result = match predictor {
                GapPredictor::LucasKanade => {
                    LucasKanade::default().estimate(&key.image, &pred.image)
                }
                _ => HornSchunck::default().estimate(&key.image, &pred.image),
            };
            let act = net.forward_prefix(&key.image.to_tensor(), target);
            let shape = act.shape();
            // "We take the average vector within each receptive field"
            // (§IV-E2): resample the dense field onto the activation grid.
            let field = result.field.resample(shape.height, shape.width, rf.stride);
            let (warped, _) = warp_activation(&act, &field, rf.stride, Interpolation::Bilinear);
            net.forward_suffix(&warped, target)
        }
    }
}

/// The fixed-gap protocol: every `gap` frames, treat frame `t` as the key
/// frame and predict frame `t + gap`; score the predictions.
///
/// This isolates prediction quality at a controlled key-to-predicted time
/// gap (33 ms = 1 frame, 198 ms = 6 frames at 30 fps), exactly Fig 14's and
/// Table II's setup.
pub fn gap_accuracy(
    zoo: &ZooNet,
    target: usize,
    clips: &[Clip],
    gap: usize,
    predictor: GapPredictor,
) -> f32 {
    let gap = gap.max(1);
    let mut outputs: Vec<(Tensor3, &Frame)> = Vec::new();
    for clip in clips {
        let mut t0 = 0;
        while t0 + gap < clip.len() {
            let key = &clip.frames[t0];
            let pred = &clip.frames[t0 + gap];
            outputs.push((
                predict_output(&zoo.network, target, key, pred, predictor),
                pred,
            ));
            t0 += gap;
        }
    }
    score(zoo.task, &outputs)
}

/// Result of a policy-driven run over whole clips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// Task accuracy over every frame (keys and predictions), percent.
    pub accuracy: f32,
    /// Fraction of frames executed as key frames.
    pub key_fraction: f32,
    /// Total frames evaluated.
    pub frames: usize,
}

/// Which frame executor a protocol drives. All variants produce
/// bit-identical outputs (see `eva2_core::pipeline` and the
/// `eva2_core::serve` threading-model docs): pipelined overlaps each
/// frame's RFBME with its predecessor's CNN work on a worker thread, and
/// the engine funnels frames through the worker-pool serving
/// [`Engine`](eva2_core::serve::Engine) — the production entry point to
/// serving, and the default here so protocol runs exercise it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The worker-pool serving engine ([`EngineExecutor`]) with a forced
    /// thread count. The default (with one worker) — experiments and the
    /// serving path share a single entry point.
    Engine {
        /// Forced worker-thread count (cf. `EngineLimits::worker_threads`).
        worker_threads: usize,
    },
    /// The serial [`AmcExecutor`], kept as the bit-identity oracle.
    Serial,
    /// The two-thread streaming [`PipelinedExecutor`].
    Pipelined,
}

impl Default for ExecutorKind {
    fn default() -> Self {
        ExecutorKind::Engine { worker_threads: 1 }
    }
}

impl ExecutorKind {
    /// Builds the chosen executor over `net`.
    ///
    /// The engine variant needs an owned network (`Arc<Network>`), so it
    /// deep-copies `net` — zoo networks are small, and protocols build one
    /// executor per clip at most.
    pub fn build<'n>(self, net: &'n Network, config: AmcConfig) -> Box<dyn FrameExecutor + 'n> {
        match self {
            ExecutorKind::Engine { worker_threads } => Box::new(
                EngineExecutor::new(Arc::new(net.clone()), config, worker_threads)
                    .expect("valid AMC config"),
            ),
            ExecutorKind::Serial => {
                Box::new(AmcExecutor::try_new(net, config).expect("valid AMC config"))
            }
            ExecutorKind::Pipelined => Box::new(PipelinedExecutor::new(
                AmcExecutor::try_new(net, config).expect("valid AMC config"),
            )),
        }
    }
}

/// Runs the full AMC stack over each clip (state resets between clips,
/// like the paper's per-video evaluation) and scores every frame's output.
///
/// Frames flow through the serving engine ([`ExecutorKind::default`]), the
/// same entry point production serving uses; outputs are bit-identical to
/// the serial executor.
pub fn run_policy(zoo: &ZooNet, clips: &[Clip], config: AmcConfig) -> PolicyOutcome {
    run_policy_with(zoo, clips, config, ExecutorKind::default())
}

/// [`run_policy`] parameterised on the executor implementation.
pub fn run_policy_with(
    zoo: &ZooNet,
    clips: &[Clip],
    config: AmcConfig,
    kind: ExecutorKind,
) -> PolicyOutcome {
    let mut outputs: Vec<(Tensor3, &Frame)> = Vec::new();
    let mut keys = 0usize;
    let mut frames = 0usize;
    for clip in clips {
        // A fresh executor per clip, like the paper's per-video evaluation.
        let mut exec = kind.build(&zoo.network, config);
        let mut results = Vec::with_capacity(clip.len());
        for frame in &clip.frames {
            results.extend(
                exec.push_frame(&frame.image)
                    .expect("executor refused a clean experiment frame"),
            );
        }
        results.extend(exec.finish());
        for (r, frame) in results.into_iter().zip(&clip.frames) {
            keys += r.is_key as usize;
            frames += 1;
            outputs.push((r.output, frame));
        }
    }
    PolicyOutcome {
        accuracy: score(zoo.task, &outputs),
        key_fraction: if frames == 0 {
            0.0
        } else {
            keys as f32 / frames as f32
        },
        frames,
    }
}

/// The Fig 15 protocol: frames are sampled at a fixed `gap`; an adaptive
/// policy (with the given threshold applied to one of the two §II-C4
/// features) decides per sampled frame whether to refresh the key frame.
/// Returns `(predicted-frame fraction, accuracy)`.
pub fn fixed_gap_adaptive(
    zoo: &ZooNet,
    clips: &[Clip],
    gap: usize,
    config: AmcConfig,
) -> (f32, f32) {
    let gap = gap.max(1);
    let mut outputs: Vec<(Tensor3, &Frame)> = Vec::new();
    let mut keys = 0usize;
    let mut total = 0usize;
    for clip in clips {
        let mut amc = AmcExecutor::try_new(&zoo.network, config).expect("valid AMC config");
        let mut t = 0;
        while t < clip.len() {
            let frame = &clip.frames[t];
            let r = amc.process(&frame.image);
            keys += r.is_key as usize;
            total += 1;
            outputs.push((r.output, frame));
            t += gap;
        }
    }
    let pred_fraction = if total == 0 {
        0.0
    } else {
        1.0 - keys as f32 / total as f32
    };
    (pred_fraction, score(zoo.task, &outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{train_workload, Budget};

    fn tiny_budget() -> Budget {
        Budget {
            train_clips: 12,
            train_clip_len: 2,
            eval_clips: 3,
            eval_clip_len: 8,
            epochs: 2,
        }
    }

    #[test]
    fn new_key_predictor_matches_baseline_on_gap_frames() {
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let target = tw.zoo.late_target;
        // NewKey at any gap scores identically to running the network
        // directly on the same frames.
        let a = gap_accuracy(&tw.zoo, target, &tw.test, 2, GapPredictor::NewKey);
        assert!((0.0..=100.0).contains(&a));
    }

    #[test]
    fn policy_run_counts_frames() {
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let out = run_policy(&tw.zoo, &tw.test, amc_config_for(Workload::FasterM));
        assert_eq!(out.frames, 3 * 8);
        assert!(
            out.key_fraction >= 3.0 / 24.0 - 1e-6,
            "each clip starts with a key"
        );
    }

    #[test]
    fn pipelined_executor_reproduces_serial_policy_outcome() {
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let cfg = amc_config_for(Workload::FasterM);
        let serial = run_policy_with(&tw.zoo, &tw.test, cfg, ExecutorKind::Serial);
        let pipelined = run_policy_with(&tw.zoo, &tw.test, cfg, ExecutorKind::Pipelined);
        assert_eq!(serial, pipelined, "executors must be interchangeable");
    }

    #[test]
    fn engine_executor_reproduces_serial_policy_outcome() {
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let cfg = amc_config_for(Workload::FasterM);
        let serial = run_policy_with(&tw.zoo, &tw.test, cfg, ExecutorKind::Serial);
        for worker_threads in [1, 3] {
            let engine = run_policy_with(
                &tw.zoo,
                &tw.test,
                cfg,
                ExecutorKind::Engine { worker_threads },
            );
            assert_eq!(
                serial, engine,
                "serving engine ({worker_threads} workers) must match the serial oracle"
            );
        }
    }

    #[test]
    fn default_executor_is_the_serving_engine() {
        assert_eq!(
            ExecutorKind::default(),
            ExecutorKind::Engine { worker_threads: 1 }
        );
    }

    #[test]
    fn always_key_policy_has_key_fraction_one() {
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let mut cfg = amc_config_for(Workload::FasterM);
        cfg.policy = PolicyConfig::AlwaysKey;
        let out = run_policy(&tw.zoo, &tw.test, cfg);
        assert!((out.key_fraction - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_gap_adaptive_bounds() {
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let mut cfg = amc_config_for(Workload::FasterM);
        cfg.policy = PolicyConfig::BlockError {
            threshold: f32::INFINITY,
            max_gap: usize::MAX,
        };
        let (pred_frac, _) = fixed_gap_adaptive(&tw.zoo, &tw.test, 2, cfg);
        // Only the first frame of each clip is a key.
        let expect = 1.0 - 3.0 / (3.0 * 4.0);
        assert!((pred_frac - expect).abs() < 1e-6, "pred_frac {pred_frac}");
    }

    #[test]
    fn score_handles_both_tasks() {
        use eva2_tensor::Shape3;
        let tw = train_workload(Workload::FasterM, &tiny_budget());
        let f = &tw.test[0].frames[0];
        let out = tw.zoo.network.forward(&f.image.to_tensor());
        let s = score(Task::Detection, &[(out, f)]);
        assert!((0.0..=100.0).contains(&s));
        let logits = Tensor3::from_fn(Shape3::new(8, 1, 1), |c, _, _| {
            if c == f.truth.class {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(score(Task::Classification, &[(logits, f)]), 100.0);
    }
}
