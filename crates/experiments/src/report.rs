//! Plain-text tables and JSON result dumps.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-width text table builder for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Writes a serialisable result to `results/<name>.json` (relative to the
/// workspace root when run via `cargo run`), creating the directory as
/// needed. Returns the path written, or `None` on I/O failure (results are
/// still printed to stdout, so failure to persist is non-fatal).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).ok()?;
    std::fs::write(&path, body).ok()?;
    Some(path)
}

/// Formats a percentage with one decimal.
pub fn pct(v: f32) -> String {
    format!("{v:.1}")
}

/// Formats a millisecond/millijoule quantity with adaptive precision.
pub fn qty(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 4);
        // Columns align: both rows start "name-width" apart.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].find('1'), lines[3].find('1'));
    }

    #[test]
    fn qty_precision() {
        assert_eq!(qty(4370.1), "4370");
        assert_eq!(qty(53.4), "53.4");
        assert_eq!(qty(0.032), "0.032");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(51.849), "51.8");
    }
}
