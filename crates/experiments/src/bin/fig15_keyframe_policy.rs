//! Figure 15: adaptive key-frame selection — vision accuracy as a function
//! of the predicted-frame percentage, for the two candidate policy features
//! (RFBME block-match error vs total motion-vector magnitude).
//!
//! Protocol (per §IV-E5): fix the frame sampling gap (198 ms for detection,
//! the longest representable gap for classification), sweep the decision
//! threshold, and record (predicted-frame %, accuracy). A fixed key-frame
//! rate would trace the straight line between the 0% and 100% endpoints;
//! adaptive curves should sit above it.

use eva2_cnn::zoo::Workload;
use eva2_core::policy::PolicyConfig;
use eva2_experiments::evalproto::{amc_config_for, fixed_gap_adaptive};
use eva2_experiments::report::{pct, write_json, Table};
use eva2_experiments::workloads::{train_workload, Budget};
use eva2_video::frame::Clip;
use serde::Serialize;

#[derive(Serialize)]
struct Fig15Point {
    workload: String,
    feature: String,
    threshold: f32,
    predicted_percent: f32,
    accuracy: f32,
}

const ERROR_THRESHOLDS: [f32; 7] = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, f32::INFINITY];
const MAGNITUDE_THRESHOLDS: [f32; 7] = [0.0, 10.0, 25.0, 50.0, 100.0, 200.0, f32::INFINITY];

fn main() {
    let budget = Budget::from_env();
    println!("Figure 15: adaptive key-frame selection strategies");
    println!();
    let mut points = Vec::new();
    for workload in Workload::ALL {
        eprintln!("[fig15] training {} ...", workload.name());
        let tw = train_workload(workload, &budget);
        let gap = match workload {
            Workload::AlexNet => (budget.eval_clip_len / 2).max(1),
            _ => Clip::frames_for_gap_ms(198.0),
        };
        println!(
            "{} (sampling gap = {} frames ≈ {:.0} ms):",
            workload.name(),
            gap,
            gap as f32 * Clip::FRAME_MS
        );
        let mut t = Table::new(["feature", "threshold", "predicted %", "accuracy"]);
        for (feature, thresholds) in [
            ("block-error", &ERROR_THRESHOLDS),
            ("motion-magnitude", &MAGNITUDE_THRESHOLDS),
        ] {
            for &threshold in thresholds.iter() {
                let mut cfg = amc_config_for(workload);
                cfg.policy = match feature {
                    "block-error" => PolicyConfig::BlockError {
                        threshold,
                        max_gap: usize::MAX,
                    },
                    _ => PolicyConfig::MotionMagnitude {
                        threshold,
                        max_gap: usize::MAX,
                    },
                };
                let (pred_frac, acc) = fixed_gap_adaptive(&tw.zoo, &tw.test, gap, cfg);
                t.row([
                    feature.to_string(),
                    if threshold.is_infinite() {
                        "inf".to_string()
                    } else {
                        format!("{threshold}")
                    },
                    format!("{:.0}", pred_frac * 100.0),
                    pct(acc),
                ]);
                points.push(Fig15Point {
                    workload: workload.name().into(),
                    feature: feature.into(),
                    threshold,
                    predicted_percent: pred_frac * 100.0,
                    accuracy: acc,
                });
            }
        }
        println!("{}", t.render());
    }
    println!("Paper shape: both adaptive curves dominate the straight fixed-rate line between");
    println!("their endpoints; block error and motion magnitude perform comparably, and the");
    println!("hardware uses block error because it is an RFBME byproduct.");
    write_json("fig15_keyframe_policy", &points);
}
