//! Pre-trains and caches all three workloads (utility).
//!
//! The accuracy experiments (`table1_tradeoff`, `fig14_motion_estimation`,
//! `table2_target_layer`, `table3_retraining`, `fig15_keyframe_policy`) all
//! train the same networks; training is deterministic and cached under
//! `results/`, so running this binary once makes every subsequent
//! experiment start from the cache.

use eva2_cnn::metrics::Detection;
use eva2_cnn::zoo::{Task, Workload};
use eva2_experiments::evalproto::{baseline_accuracy, truth_normbox};
use eva2_experiments::workloads::{train_workload, Budget};

fn main() {
    let budget = Budget::from_env();
    for w in Workload::ALL {
        let t0 = std::time::Instant::now();
        let tw = train_workload(w, &budget);
        let acc = baseline_accuracy(&tw.zoo, &tw.validation);
        let mut extra = String::new();
        if tw.zoo.task == Task::Detection {
            let mut cls_ok = 0;
            let mut n = 0;
            let mut iou50 = 0;
            for clip in &tw.validation {
                for f in &clip.frames {
                    let out = tw.zoo.network.forward(&f.image.to_tensor());
                    let d = Detection::from_output(&out);
                    cls_ok += (d.class == f.truth.class) as usize;
                    iou50 += (d.bbox.iou(&truth_normbox(f)) >= 0.5) as usize;
                    n += 1;
                }
            }
            extra = format!(
                "  (class acc {:.1}%, IoU@0.5 {:.1}%)",
                100.0 * cls_ok as f32 / n as f32,
                100.0 * iou50 as f32 / n as f32
            );
        }
        println!(
            "{}: validation accuracy {:.2}{}  [{:?}]",
            w.name(),
            acc,
            extra,
            t0.elapsed()
        );
    }
}
