//! Figure 14: accuracy impact of motion-estimation techniques on the two
//! detection workloads at 33 ms and 198 ms key-to-predicted gaps.
//!
//! Conditions (matching the figure's bars): *new key frame* (ideal, full
//! CNN), the dense-flow baseline (FlowNet2-s in the paper; Horn–Schunck
//! here, see DESIGN.md §2), Lucas–Kanade, RFBME, and *old key frame*
//! (reuse without updating).

use eva2_cnn::zoo::Workload;
use eva2_experiments::evalproto::{baseline_accuracy, gap_accuracy, GapPredictor};
use eva2_experiments::report::{pct, write_json, Table};
use eva2_experiments::workloads::{train_workload, Budget};
use eva2_video::frame::Clip;
use serde::Serialize;

#[derive(Serialize)]
struct Fig14Row {
    workload: String,
    gap_ms: f32,
    method: String,
    map_percent: f32,
    ops: Option<u64>,
}

fn main() {
    let budget = Budget::from_env();
    println!("Figure 14: accuracy impact of motion estimation techniques (mAP %)");
    println!();
    let gaps_ms = [33.0f32, 198.0];
    let predictors = [
        GapPredictor::NewKey,
        GapPredictor::DenseFlow,
        GapPredictor::LucasKanade,
        GapPredictor::Rfbme { bilinear: true },
        GapPredictor::OldKey,
    ];
    let mut rows = Vec::new();
    for workload in [Workload::Faster16, Workload::FasterM] {
        eprintln!("[fig14] training {} ...", workload.name());
        let tw = train_workload(workload, &budget);
        let target = tw.zoo.late_target;
        let all_frames = baseline_accuracy(&tw.zoo, &tw.test);
        println!(
            "{} (every-frame baseline mAP = {}):",
            workload.name(),
            pct(all_frames)
        );
        let mut t = Table::new(["method", "33 ms", "198 ms"]);
        let mut per_method: Vec<(String, Vec<f32>)> = predictors
            .iter()
            .map(|p| (p.name().to_string(), Vec::new()))
            .collect();
        for (gi, &gap_ms) in gaps_ms.iter().enumerate() {
            let gap = Clip::frames_for_gap_ms(gap_ms);
            for (pi, &p) in predictors.iter().enumerate() {
                eprintln!(
                    "[fig14] {} gap {}ms method {} ...",
                    workload.name(),
                    gap_ms,
                    p.name()
                );
                let acc = gap_accuracy(&tw.zoo, target, &tw.test, gap, p);
                per_method[pi].1.push(acc);
                rows.push(Fig14Row {
                    workload: workload.name().into(),
                    gap_ms,
                    method: p.name().into(),
                    map_percent: acc,
                    ops: None,
                });
                let _ = gi;
            }
        }
        for (name, accs) in per_method {
            t.row([name, pct(accs[0]), pct(accs[1])]);
        }
        println!("{}", t.render());
    }
    println!("Paper shape: RFBME is at or near the best motion method; every motion method");
    println!("beats old-key reuse at 198 ms; the spread collapses at 33 ms.");
    write_json("fig14_motion_estimation", &rows);
}
