//! Table II: accuracy impact of early vs late AMC target layers at several
//! key-frame intervals.
//!
//! Early = after the CNN's first pooling layer; late = the last spatial
//! layer (the paper's default). For the classification workload the paper
//! uses a very long interval (4891 ms); our clips are shorter, so the
//! longest representable gap stands in (recorded in EXPERIMENTS.md).

use eva2_cnn::zoo::Workload;
use eva2_experiments::evalproto::{baseline_accuracy, gap_accuracy, GapPredictor};
use eva2_experiments::report::{pct, write_json, Table};
use eva2_experiments::workloads::{train_workload, Budget};
use eva2_video::frame::Clip;
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    network: String,
    interval: String,
    early_target: f32,
    late_target: f32,
}

fn main() {
    let budget = Budget::from_env();
    println!("Table II: accuracy impact of the AMC target layer");
    println!();
    let mut t = Table::new(["Network", "Interval", "Early Target", "Late Target"]);
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        eprintln!("[table2] training {} ...", workload.name());
        let tw = train_workload(workload, &budget);
        let orig = baseline_accuracy(&tw.zoo, &tw.test);
        t.row([
            workload.name().to_string(),
            "orig".into(),
            pct(orig),
            pct(orig),
        ]);
        rows.push(Table2Row {
            network: workload.name().into(),
            interval: "orig".into(),
            early_target: orig,
            late_target: orig,
        });
        // AlexNet: the paper's single huge interval; detection: 33/198 ms.
        let intervals: Vec<(String, usize)> = match workload {
            Workload::AlexNet => {
                let gap = (budget.eval_clip_len - 1).max(1);
                vec![(format!("{:.0} ms*", gap as f32 * Clip::FRAME_MS), gap)]
            }
            _ => vec![
                ("33 ms".to_string(), Clip::frames_for_gap_ms(33.0)),
                ("198 ms".to_string(), Clip::frames_for_gap_ms(198.0)),
            ],
        };
        // AlexNet uses memoization (warp hurts classification, §IV-E1), so
        // its target-layer comparison uses OldKey reuse at both targets;
        // detection uses RFBME warping.
        let predictor = match workload {
            Workload::AlexNet => GapPredictor::OldKey,
            _ => GapPredictor::Rfbme { bilinear: true },
        };
        for (label, gap) in intervals {
            let early = gap_accuracy(&tw.zoo, tw.zoo.early_target, &tw.test, gap, predictor);
            let late = gap_accuracy(&tw.zoo, tw.zoo.late_target, &tw.test, gap, predictor);
            t.row([
                workload.name().to_string(),
                label.clone(),
                pct(early),
                pct(late),
            ]);
            rows.push(Table2Row {
                network: workload.name().into(),
                interval: label,
                early_target: early,
                late_target: late,
            });
        }
    }
    println!("{}", t.render());
    println!("(*) AlexNet interval scaled to the synthetic clip length; the paper uses 4891 ms.");
    println!("Paper shape: the late target is at least as accurate as the early target in");
    println!("most cells, so AMC statically targets the last spatial layer.");
    write_json("table2_target_layer", &rows);
}
