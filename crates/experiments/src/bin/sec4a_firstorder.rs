//! §IV-A: the first-order efficiency model.
//!
//! Reproduces the analytical comparison (prefix MACs vs RFBME adds for
//! Faster16 at 1000×562) and cross-checks the analytical RFBME op count
//! against the *empirical* operation counter of the actual RFBME
//! implementation on same-geometry synthetic frames.

use eva2_experiments::report::{write_json, Table};
use eva2_hw::cost::HwModel;
use eva2_hw::firstorder::{reuse_speedup, rfbme_ops, unoptimized_ops};
use eva2_hw::nets;
use eva2_motion::rfbme::{RfGeometry, Rfbme, SearchParams};
use eva2_tensor::GrayImage;
use serde::Serialize;

#[derive(Serialize)]
struct Sec4aResult {
    workload: String,
    prefix_macs: u64,
    unoptimized_ops: u64,
    rfbme_ops: u64,
    reuse_speedup: f64,
    savings_ratio: f64,
}

fn main() {
    let model = HwModel::default();
    println!("Section IV-A: first-order efficiency comparison");
    println!("(paper: Faster16 prefix = 1.7e11 MACs; unoptimized motion estimation = 3e9 adds; RFBME = 1.3e7 adds)");
    println!();
    let mut t = Table::new([
        "network",
        "prefix MACs",
        "unoptimized ME ops",
        "RFBME ops",
        "reuse speedup",
        "MACs / RFBME ops",
    ]);
    let mut results = Vec::new();
    for net in [nets::alexnet(), nets::faster16(), nets::fasterm()] {
        let target = HwModel::canonical_target(&net);
        let p = model.rfbme_params(&net);
        let prefix = net.prefix_macs(target);
        let un = unoptimized_ops(&p);
        let opt = rfbme_ops(&p);
        let ratio = prefix as f64 / opt.max(1) as f64;
        t.row([
            net.name.clone(),
            format!("{:.3e}", prefix as f64),
            format!("{:.3e}", un as f64),
            format!("{:.3e}", opt as f64),
            format!("{:.0}x", reuse_speedup(&p)),
            format!("{ratio:.1e}"),
        ]);
        results.push(Sec4aResult {
            workload: net.name.clone(),
            prefix_macs: prefix,
            unoptimized_ops: un,
            rfbme_ops: opt,
            reuse_speedup: reuse_speedup(&p),
            savings_ratio: ratio,
        });
    }
    println!("{}", t.render());

    // Empirical cross-check: run the real RFBME implementation on frames
    // with the Faster16 conv5_3 geometry (downscaled 4x to keep the run
    // short; op counts scale linearly with the pixel count).
    println!(
        "Empirical cross-check (real RFBME on 250x140 frames, conv5_3-like geometry scaled 4x):"
    );
    let rf = RfGeometry {
        size: 49,
        stride: 4, // 196/16 scaled by 4
        padding: 0,
    };
    let key = GrayImage::from_fn(140, 250, |y, x| {
        let v = (y as f32 * 0.13).sin() + (x as f32 * 0.09).cos();
        (120.0 + v * 50.0) as u8
    });
    let new = key.translate(1, 2, 0);
    let rfbme = Rfbme::new(rf, SearchParams { radius: 6, step: 2 });
    let r = rfbme.estimate(&key, &new);
    println!(
        "  producer ops = {:.3e}, consumer ops = {:.3e}, total = {:.3e}",
        r.producer_ops as f64,
        r.consumer_ops as f64,
        r.ops() as f64
    );
    let analytic = rfbme_ops(&eva2_hw::firstorder::RfbmeParams {
        act_h: rf.grid_len(140),
        act_w: rf.grid_len(250),
        rf_size: rf.size,
        rf_stride: rf.stride,
        search_radius: 6,
        search_stride: 2,
    });
    println!(
        "  analytic model = {:.3e}  (empirical/analytic = {:.2})",
        analytic as f64,
        r.ops() as f64 / analytic.max(1) as f64
    );
    write_json("sec4a_firstorder", &results);
}
