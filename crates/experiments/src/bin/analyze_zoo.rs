//! Prints the `eva2-analysis` static-verification report for every zoo
//! network at both canonical target layers under the default serving
//! configuration, plus the Q8.8 fixed-point datapath for FasterM — the
//! workload the serving suites run fixed. (The deeper networks genuinely
//! exceed Q8.8 range at their late targets with untrained weights; the
//! analysis reports that as a warning on the f32 datapath, and the repo
//! never constructs them fixed.)
//!
//! Exits nonzero if any (network, configuration) pair produces an
//! error-severity diagnostic — CI runs this as a gate, so the shipped zoo
//! can never regress into a state the `Engine` constructor would refuse.

use eva2_cnn::zoo::Workload;
use eva2_core::executor::AmcConfig;
use eva2_core::target::TargetSelection;

fn main() {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for workload in Workload::ALL {
        let z = workload.build(11);
        for (label, target) in [
            ("early", TargetSelection::Early),
            ("late", TargetSelection::Late),
        ] {
            let fixed_modes: &[bool] = match workload {
                Workload::FasterM => &[false, true],
                _ => &[false],
            };
            for &fixed_point in fixed_modes {
                let config = AmcConfig::builder()
                    .target(target)
                    .fixed_point(fixed_point)
                    .build()
                    .expect("default-derived config is valid");
                let report = match config.analyze(&z.network) {
                    Ok(r) => r,
                    Err(e) => {
                        println!(
                            "== {} / {label} target / fixed_point={fixed_point}: \
                             target resolution failed: {e}",
                            workload.name()
                        );
                        errors += 1;
                        continue;
                    }
                };
                println!(
                    "== {} / {label} target / fixed_point={fixed_point}",
                    workload.name()
                );
                println!("{}", report.render());
                errors += report.errors().count();
                warnings += report.warnings().count();
            }
        }
    }
    println!("analysis summary: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        eprintln!("FAIL: zoo networks must verify clean under default configurations");
        std::process::exit(1);
    }
}
