//! Prints the `eva2-analysis` static-verification report for every zoo
//! network at both canonical target layers under the default serving
//! configuration, plus the Q8.8 fixed-point datapath for FasterM — the
//! workload the serving suites run fixed. (The deeper networks genuinely
//! exceed Q8.8 range at their late targets with untrained weights; the
//! analysis reports that as a warning on the f32 datapath, and the repo
//! never constructs them fixed.)
//!
//! Exits nonzero if any (network, configuration) pair produces an
//! error-severity diagnostic, **or** if the static cost model's MAC
//! predictions disagree with a live two-frame runtime probe (one key
//! frame, one predicted frame) — CI runs this as a gate, so the shipped
//! zoo can never regress into a state the `Engine` constructor would
//! refuse, and the cost numbers the capacity planner sizes fleets with
//! can never drift from what the executor actually does.

use eva2_cnn::network::Network;
use eva2_cnn::zoo::Workload;
use eva2_core::executor::{AmcConfig, AmcExecutor};
use eva2_core::policy::PolicyConfig;
use eva2_core::target::TargetSelection;
use eva2_tensor::GrayImage;

/// Runs one key frame and one predicted frame, returning their measured
/// `macs_executed` — the live numbers the static model must hit exactly.
fn runtime_probe(
    net: &Network,
    target: TargetSelection,
    fixed_point: bool,
) -> Result<(u64, u64), String> {
    let config = AmcConfig::builder()
        .target(target)
        .fixed_point(fixed_point)
        .policy(PolicyConfig::StaticRate { period: 1000 })
        .max_residual_error(f32::INFINITY)
        .build()
        .map_err(|e| format!("probe config: {e}"))?;
    let mut exec = AmcExecutor::try_new(net, config).map_err(|e| format!("probe build: {e}"))?;
    let shape = net.input_shape();
    let frame = |t: usize| {
        GrayImage::from_fn(shape.height, shape.width, |y, x| {
            let xs = (x + 2 * t) as f32;
            (120.0 + 46.0 * ((y as f32 * 0.27).sin() + (xs * 0.21).cos())) as u8
        })
    };
    let key = exec
        .try_process(&frame(0))
        .map_err(|e| format!("probe key frame: {e}"))?;
    let predicted = exec
        .try_process(&frame(1))
        .map_err(|e| format!("probe predicted frame: {e}"))?;
    if !key.is_key || predicted.is_key {
        return Err("probe frames did not split key/predicted as forced".into());
    }
    Ok((key.macs_executed, predicted.macs_executed))
}

fn main() {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for workload in Workload::ALL {
        let z = workload.build(11);
        for (label, target) in [
            ("early", TargetSelection::Early),
            ("late", TargetSelection::Late),
        ] {
            let fixed_modes: &[bool] = match workload {
                Workload::FasterM => &[false, true],
                _ => &[false],
            };
            for &fixed_point in fixed_modes {
                let config = AmcConfig::builder()
                    .target(target)
                    .fixed_point(fixed_point)
                    .build()
                    .expect("default-derived config is valid");
                let report = match config.analyze(&z.network) {
                    Ok(r) => r,
                    Err(e) => {
                        println!(
                            "== {} / {label} target / fixed_point={fixed_point}: \
                             target resolution failed: {e}",
                            workload.name()
                        );
                        errors += 1;
                        continue;
                    }
                };
                println!(
                    "== {} / {label} target / fixed_point={fixed_point}",
                    workload.name()
                );
                println!("{}", report.render());
                errors += report.errors().count();
                warnings += report.warnings().count();
                match (&report.cost, runtime_probe(&z.network, target, fixed_point)) {
                    (Some(cost), Ok((key_macs, predicted_macs))) => {
                        let key_ok = cost.key_frame_macs == key_macs;
                        let predicted_ok = cost.predicted_frame_macs == predicted_macs;
                        println!(
                            "  probe: key {key_macs} MACs ({}), predicted {predicted_macs} \
                             MACs ({})",
                            if key_ok {
                                "matches static"
                            } else {
                                "STATIC MISMATCH"
                            },
                            if predicted_ok {
                                "matches static"
                            } else {
                                "STATIC MISMATCH"
                            },
                        );
                        if !key_ok || !predicted_ok {
                            eprintln!(
                                "  static model predicted key {} / predicted {}",
                                cost.key_frame_macs, cost.predicted_frame_macs
                            );
                            errors += 1;
                        }
                    }
                    (None, _) => {
                        eprintln!("  cost model did not build for a shipped zoo network");
                        errors += 1;
                    }
                    (_, Err(e)) => {
                        eprintln!("  runtime probe failed: {e}");
                        errors += 1;
                    }
                }
            }
        }
    }
    println!("analysis summary: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        eprintln!("FAIL: zoo networks must verify clean under default configurations");
        std::process::exit(1);
    }
}
