//! Figure 12: hardware area on a 65 nm process for EVA² compared to the
//! deep-learning ASICs it attaches to (Eyeriss for conv, EIE for FC).

use eva2_experiments::report::{qty, Table};
use eva2_hw::area;

fn main() {
    let report = area::fig12_report();
    println!("Figure 12: 65 nm area comparison");
    println!();
    let mut t = Table::new(["unit", "area (mm^2)", "share of VPU (%)"]);
    for e in &report.entries {
        let pct = 100.0 * e.mm2 / report.total_mm2();
        t.row([e.name.clone(), qty(e.mm2), format!("{pct:.1}")]);
    }
    t.row([
        "total VPU".to_string(),
        qty(report.total_mm2()),
        "100.0".to_string(),
    ]);
    println!("{}", t.render());

    let b = area::eva2_breakdown();
    println!("EVA2 internal breakdown (paper: pixel buffers 54.5%, activation buffer 16.0%):");
    let mut t2 = Table::new(["component", "area (mm^2)", "share of EVA2 (%)"]);
    for (name, mm2) in [
        ("pixel buffers (eDRAM)", b.pixel_buffers_mm2),
        ("key activation buffer", b.activation_buffer_mm2),
        ("RFBME + warp engine logic", b.logic_mm2),
    ] {
        t2.row([
            name.to_string(),
            qty(mm2),
            format!("{:.1}", 100.0 * mm2 / area::EVA2_MM2),
        ]);
    }
    println!("{}", t2.render());
    println!(
        "Paper: EVA2 is 3.5% of the three-unit VPU; measured: {:.1}%",
        report.percent_of_total("EVA2").unwrap_or(0.0)
    );
    eva2_experiments::report::write_json("fig12_area", &report);
}
