//! Figure 13: normalized latency (a) and energy (b) per frame for the three
//! workloads — `orig` (baseline CNN execution), `pred` (EVA² predicted
//! frames alone), and `avg` (the overall average at the paper's `med`
//! key-frame rates), with the per-unit breakdown (Eyeriss / EIE / EVA²).

use eva2_experiments::report::{qty, write_json, Table};
use eva2_hw::cost::HwModel;
use eva2_hw::nets;
use serde::Serialize;

/// Key-frame fractions of the paper's `med` configurations (Table I).
const MED_KEYS: [(&str, f64); 3] = [("AlexNet", 0.11), ("Faster16", 0.36), ("FasterM", 0.37)];

#[derive(Serialize)]
struct Fig13Row {
    workload: String,
    config: String,
    latency_ms: f64,
    energy_mj: f64,
    normalized_latency: f64,
    normalized_energy: f64,
    eyeriss_mj: f64,
    eie_mj: f64,
    eva2_mj: f64,
}

fn main() {
    let model = HwModel::default();
    println!("Figure 13: performance and energy impact of EVA2");
    println!("(bars normalized to the orig baseline; med key-frame rates from Table I)");
    println!();
    let mut rows = Vec::new();
    let mut t = Table::new([
        "network",
        "config",
        "latency (ms)",
        "norm. latency",
        "energy (mJ)",
        "norm. energy",
        "Eyeriss mJ",
        "EIE mJ",
        "EVA2 mJ",
    ]);
    for (name, keys) in MED_KEYS {
        let net = nets::by_name(name).expect("workload");
        let orig = model.baseline_cost(&net);
        let pred = model.predicted_frame_cost(&net);
        let avg = model.average_cost(&net, keys);
        for (config, cost) in [("orig", orig), ("pred", pred), ("avg", avg)] {
            t.row([
                name.to_string(),
                config.to_string(),
                qty(cost.latency_ms),
                format!("{:.3}", cost.latency_ms / orig.latency_ms),
                qty(cost.energy_mj),
                format!("{:.3}", cost.energy_mj / orig.energy_mj),
                qty(cost.eyeriss_mj),
                qty(cost.eie_mj),
                qty(cost.eva2_mj),
            ]);
            rows.push(Fig13Row {
                workload: name.to_string(),
                config: config.to_string(),
                latency_ms: cost.latency_ms,
                energy_mj: cost.energy_mj,
                normalized_latency: cost.latency_ms / orig.latency_ms,
                normalized_energy: cost.energy_mj / orig.energy_mj,
                eyeriss_mj: cost.eyeriss_mj,
                eie_mj: cost.eie_mj,
                eva2_mj: cost.eva2_mj,
            });
        }
    }
    println!("{}", t.render());
    println!("Paper shape: average energy reductions of ~87% (AlexNet), ~62% (Faster16), ~54% (FasterM).");
    for (name, keys) in MED_KEYS {
        let net = nets::by_name(name).expect("workload");
        let orig = model.baseline_cost(&net);
        let avg = model.average_cost(&net, keys);
        println!(
            "  {name}: measured energy reduction = {:.0}%",
            100.0 * (1.0 - avg.energy_mj / orig.energy_mj)
        );
    }
    write_json("fig13_energy_latency", &rows);
}
