//! Table III: does fine-tuning the CNN suffix on *warped* activation data
//! help? The paper finds the effect small or negative and concludes
//! "additional training on warped data is unnecessary".
//!
//! Protocol: build warped-activation training samples (key frame at `t`,
//! RFBME-warp its target activation to `t + gap`, label with frame
//! `t + gap`'s ground truth), fine-tune only the suffix, then measure
//! accuracy on *plain* (key-frame) data — exactly the paper's "accuracy
//! column shows the network's score when processing plain, unwarped
//! activation data".

use eva2_cnn::train::TrainConfig;
use eva2_cnn::zoo::{Task, Workload};
use eva2_core::warp::warp_activation;
use eva2_experiments::evalproto::{baseline_accuracy, SEARCH};
use eva2_experiments::report::{pct, write_json, Table};
use eva2_experiments::workloads::{det_sample, train_workload, Budget, TrainedWorkload};
use eva2_motion::rfbme::{RfGeometry, Rfbme};
use eva2_tensor::interp::Interpolation;
use eva2_tensor::Tensor3;
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    network: String,
    variant: String,
    accuracy_on_plain_data: f32,
}

/// Builds (warped activation, label, bbox) samples at the given target.
fn warped_samples(
    tw: &TrainedWorkload,
    target: usize,
    gap: usize,
) -> Vec<(Tensor3, usize, [f32; 4])> {
    let rf = tw.zoo.network.receptive_field(target);
    let rfbme = Rfbme::new(
        RfGeometry {
            size: rf.size,
            stride: rf.stride,
            padding: rf.padding,
        },
        SEARCH,
    );
    let mut samples = Vec::new();
    for clip in &tw.validation {
        let mut t0 = 0;
        while t0 + gap < clip.len() {
            let key = &clip.frames[t0];
            let pred = &clip.frames[t0 + gap];
            let motion = rfbme.estimate(&key.image, &pred.image);
            let act = tw
                .zoo
                .network
                .forward_prefix(&key.image.to_tensor(), target);
            let (warped, _) =
                warp_activation(&act, &motion.field, rf.stride, Interpolation::Bilinear);
            let d = det_sample(pred);
            samples.push((warped, d.label, d.bbox));
            t0 += gap;
        }
    }
    samples
}

fn main() {
    let budget = Budget::from_env();
    println!("Table III: fine-tuning the CNN suffix on warped activation data");
    println!("(accuracy measured on plain, unwarped key-frame data)");
    println!();
    let mut t = Table::new(["Network", "Target Layer", "Accuracy"]);
    let mut rows = Vec::new();
    for workload in [Workload::FasterM, Workload::Faster16] {
        eprintln!("[table3] training {} ...", workload.name());
        let tw = train_workload(workload, &budget);
        assert_eq!(tw.zoo.task, Task::Detection);
        let no_retrain = baseline_accuracy(&tw.zoo, &tw.test);
        t.row([
            workload.name().to_string(),
            "No Retraining".into(),
            pct(no_retrain),
        ]);
        rows.push(Table3Row {
            network: workload.name().into(),
            variant: "no-retraining".into(),
            accuracy_on_plain_data: no_retrain,
        });
        for (label, target) in [
            ("Early Target", tw.zoo.early_target),
            ("Late Target", tw.zoo.late_target),
        ] {
            eprintln!("[table3] {} fine-tune at {label} ...", workload.name());
            // Fresh copy of the trained network for each variant.
            let mut variant = train_workload(workload, &budget);
            let samples = warped_samples(&variant, target, 3);
            // Gentle fine-tuning: warped activations from chaotic clips are
            // partially garbage targets; the full training rate would wreck
            // the suffix rather than adapt it.
            let cfg = TrainConfig {
                epochs: 1,
                lr: 0.00005,
                ..TrainConfig::default()
            };
            eva2_cnn::train::finetune_suffix_detector(
                &mut variant.zoo.network,
                target,
                &samples,
                &cfg,
            );
            let acc = baseline_accuracy(&variant.zoo, &variant.test);
            t.row([workload.name().to_string(), label.into(), pct(acc)]);
            rows.push(Table3Row {
                network: workload.name().into(),
                variant: label.to_lowercase().replace(' ', "-"),
                accuracy_on_plain_data: acc,
            });
        }
    }
    println!("{}", t.render());
    println!("Paper shape: retraining on warped data gives no reliable improvement on plain");
    println!("data (small or negative deltas) — so AMC ships without suffix retraining.");
    write_json("table3_retraining", &rows);
}
