//! Table I: the accuracy/efficiency trade-off space.
//!
//! For each workload: train it, measure the `orig` baseline accuracy, sweep
//! the adaptive block-error threshold on the *validation* split to find the
//! `hi`/`med`/`lo` configurations (validation accuracy degradation < 0.5%,
//! < 1%, < 2%), then report test-set accuracy, key-frame fraction, and
//! average per-frame latency/energy from the hardware model.
//!
//! Also reproduces the §IV-E1 AlexNet warp-ablation numbers (memoization vs
//! motion compensation for a translation-insensitive task).

use eva2_cnn::zoo::Workload;
use eva2_core::executor::WarpMode;
use eva2_core::policy::PolicyConfig;
use eva2_experiments::evalproto::{amc_config_for, baseline_accuracy, run_policy};
use eva2_experiments::report::{pct, qty, write_json, Table};
use eva2_experiments::workloads::{train_workload, Budget};
use eva2_hw::cost::HwModel;
use eva2_hw::nets;
use serde::Serialize;

#[derive(Serialize)]
struct Table1Row {
    network: String,
    config: String,
    accuracy: f32,
    keys_percent: f32,
    time_ms: f64,
    energy_mj: f64,
}

const THRESHOLDS: [f32; 9] = [0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 6.0, 9.0, 14.0];

fn main() {
    let budget = Budget::from_env();
    let model = HwModel::default();
    println!("Table I: accuracy vs resource efficiency (synthetic-video analogues)");
    println!();
    let mut rows = Vec::new();
    let mut t = Table::new([
        "Network",
        "Config",
        "Acc.",
        "Keys",
        "Time (ms)",
        "Energy (mJ)",
    ]);
    for workload in Workload::ALL {
        eprintln!("[table1] training {} ...", workload.name());
        let tw = train_workload(workload, &budget);
        let hw_net = nets::by_name(workload.name()).expect("descriptor");
        let orig_val = baseline_accuracy(&tw.zoo, &tw.validation);
        let orig_test = baseline_accuracy(&tw.zoo, &tw.test);
        let orig_cost = model.baseline_cost(&hw_net);
        t.row([
            workload.name().to_string(),
            "orig".into(),
            pct(orig_test),
            "100%".into(),
            qty(orig_cost.latency_ms),
            qty(orig_cost.energy_mj),
        ]);
        rows.push(Table1Row {
            network: workload.name().into(),
            config: "orig".into(),
            accuracy: orig_test,
            keys_percent: 100.0,
            time_ms: orig_cost.latency_ms,
            energy_mj: orig_cost.energy_mj,
        });

        // Sweep thresholds on validation, recording (threshold, drop, keys).
        let mut sweep = Vec::new();
        for &threshold in &THRESHOLDS {
            let mut cfg = amc_config_for(workload);
            cfg.policy = PolicyConfig::BlockError {
                threshold,
                max_gap: 24,
            };
            let out = run_policy(&tw.zoo, &tw.validation, cfg);
            sweep.push((threshold, orig_val - out.accuracy, out.key_fraction));
            eprintln!(
                "[table1] {} threshold {threshold}: val drop {:.2} pts, keys {:.0}%",
                workload.name(),
                orig_val - out.accuracy,
                out.key_fraction * 100.0
            );
        }
        // hi/med/lo: largest threshold whose validation degradation stays
        // below the bound (falling back to the tightest threshold).
        for (config, bound) in [("hi", 0.5f32), ("med", 1.0), ("lo", 2.0)] {
            let chosen = sweep
                .iter()
                .filter(|(_, drop, _)| *drop < bound)
                .map(|&(th, _, _)| th)
                .fold(f32::NAN, f32::max);
            let threshold = if chosen.is_nan() {
                THRESHOLDS[0]
            } else {
                chosen
            };
            let mut cfg = amc_config_for(workload);
            cfg.policy = PolicyConfig::BlockError {
                threshold,
                max_gap: 24,
            };
            let out = run_policy(&tw.zoo, &tw.test, cfg);
            let cost = model.average_cost(&hw_net, out.key_fraction as f64);
            t.row([
                workload.name().to_string(),
                config.into(),
                pct(out.accuracy),
                format!("{:.0}%", out.key_fraction * 100.0),
                qty(cost.latency_ms),
                qty(cost.energy_mj),
            ]);
            rows.push(Table1Row {
                network: workload.name().into(),
                config: config.into(),
                accuracy: out.accuracy,
                keys_percent: out.key_fraction * 100.0,
                time_ms: cost.latency_ms,
                energy_mj: cost.energy_mj,
            });
        }
    }
    println!("{}", t.render());

    // §IV-E1 ablation: AlexNet memoization vs motion compensation.
    println!("\nSection IV-E1 ablation: AlexNet predicted-frame updates");
    let tw = train_workload(Workload::AlexNet, &budget);
    let orig = baseline_accuracy(&tw.zoo, &tw.test);
    let mut memo_cfg = amc_config_for(Workload::AlexNet);
    memo_cfg.policy = PolicyConfig::StaticRate { period: 12 };
    let memo = run_policy(&tw.zoo, &tw.test, memo_cfg);
    let mut warp_cfg = memo_cfg;
    warp_cfg.warp = WarpMode::MotionCompensate { bilinear: true };
    let warp = run_policy(&tw.zoo, &tw.test, warp_cfg);
    println!("  orig accuracy            = {}", pct(orig));
    println!(
        "  memoization (paper: -1%)  = {} (drop {:.2})",
        pct(memo.accuracy),
        orig - memo.accuracy
    );
    println!(
        "  motion comp (paper: -5%)  = {} (drop {:.2})",
        pct(warp.accuracy),
        orig - warp.accuracy
    );
    write_json("table1_tradeoff", &rows);
}
