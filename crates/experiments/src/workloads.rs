//! Building and training the paper's three workloads on synthetic video.

use eva2_cnn::train::{self, ClsSample, DetSample, TrainConfig};
use eva2_cnn::zoo::{Task, Workload, ZooNet};
use eva2_video::dataset::{self, DatasetConfig, Split};
use eva2_video::frame::{Clip, Frame};
use eva2_video::scene::{MotionRegime, SceneConfig};

/// Sizes of the datasets and the training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Scene clips in the training set.
    pub train_clips: usize,
    /// Frames per training clip.
    pub train_clip_len: usize,
    /// Scene clips in each evaluation set.
    pub eval_clips: usize,
    /// Frames per evaluation clip (long enough for 198 ms gaps and policy
    /// runs).
    pub eval_clip_len: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Budget {
    /// The default experiment budget.
    pub fn full() -> Self {
        Self {
            train_clips: 480,
            train_clip_len: 3,
            eval_clips: 24,
            eval_clip_len: 25,
            epochs: 16,
        }
    }

    /// A reduced budget for smoke runs (`EVA2_QUICK=1`).
    pub fn quick() -> Self {
        Self {
            train_clips: 24,
            train_clip_len: 2,
            eval_clips: 6,
            eval_clip_len: 13,
            epochs: 3,
        }
    }

    /// Picks full or quick based on the environment.
    pub fn from_env() -> Self {
        if crate::quick_mode() {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// Dataset template for a workload: classification scenes for AlexNet
/// (32×32, dominant centred object), detection scenes for the Faster
/// variants (48×48, travelling object, camera pan).
pub fn dataset_config(workload: Workload, clips: usize, clip_len: usize) -> DatasetConfig {
    match workload {
        Workload::AlexNet => DatasetConfig {
            scene: SceneConfig::classification(32, 32),
            clips,
            clip_len,
            seed: 0xA1E,
            regime_mix: vec![
                MotionRegime::Frozen,
                MotionRegime::Smooth,
                MotionRegime::Smooth,
                MotionRegime::Medium,
            ],
        },
        Workload::Faster16 | Workload::FasterM => DatasetConfig {
            scene: SceneConfig::detection(48, 48),
            clips,
            clip_len,
            seed: 0xF0_0D ^ workload as u64,
            regime_mix: vec![
                MotionRegime::Smooth,
                MotionRegime::Medium,
                MotionRegime::Medium,
                MotionRegime::Chaotic,
            ],
        },
    }
}

/// Converts a frame to a classification training sample.
pub fn cls_sample(frame: &Frame) -> ClsSample {
    ClsSample {
        input: frame.image.to_tensor(),
        label: frame.truth.class,
    }
}

/// Converts a frame to a detection training sample (normalized box).
pub fn det_sample(frame: &Frame) -> DetSample {
    let h = frame.image.height() as f32;
    let w = frame.image.width() as f32;
    let (cy, cx) = frame.truth.bbox.center();
    DetSample {
        input: frame.image.to_tensor(),
        label: frame.truth.class,
        bbox: [
            cy / h,
            cx / w,
            frame.truth.bbox.h / h,
            frame.truth.bbox.w / w,
        ],
    }
}

/// A trained workload plus its evaluation clips.
#[derive(Debug)]
pub struct TrainedWorkload {
    /// Which paper workload this is.
    pub workload: Workload,
    /// The trained network and its AMC metadata.
    pub zoo: ZooNet,
    /// Held-out validation clips (threshold calibration).
    pub validation: Vec<Clip>,
    /// Held-out test clips (reported numbers).
    pub test: Vec<Clip>,
}

/// On-disk weight cache path for a (workload, budget) pair. Training is
/// deterministic, so the cache is purely an amortisation across the
/// experiment binaries (several of which train the same workload).
fn cache_path(workload: Workload, budget: &Budget) -> std::path::PathBuf {
    std::path::PathBuf::from("results").join(format!(
        "weights_{}_{}x{}e{}.json",
        workload.name(),
        budget.train_clips,
        budget.train_clip_len,
        budget.epochs
    ))
}

fn try_load_cache(zoo: &mut ZooNet, path: &std::path::Path) -> bool {
    let Ok(body) = std::fs::read_to_string(path) else {
        return false;
    };
    let Ok(snapshot) = serde_json::from_str::<Vec<Vec<f32>>>(&body) else {
        return false;
    };
    if snapshot.len() != zoo.network.len()
        || snapshot
            .iter()
            .zip(zoo.network.layers())
            .any(|(s, l)| s.len() != l.param_count())
    {
        return false;
    }
    zoo.network.restore(&snapshot);
    true
}

fn store_cache(zoo: &ZooNet, path: &std::path::Path) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(body) = serde_json::to_string(&zoo.network.snapshot()) {
        let _ = std::fs::write(path, body);
    }
}

/// Builds and trains a workload end to end.
///
/// Mirrors the paper's protocol (§IV-B): train on the training split,
/// calibrate on validation, report on a fresh test set. Trained weights are
/// cached under `results/` (training is deterministic; delete the cache to
/// retrain).
pub fn train_workload(workload: Workload, budget: &Budget) -> TrainedWorkload {
    let mut zoo = workload.build(0x5EED ^ workload as u64);
    let cache = cache_path(workload, budget);
    if !try_load_cache(&mut zoo, &cache) {
        let train_cfg = dataset_config(workload, budget.train_clips, budget.train_clip_len);
        let train_clips = dataset::build(&train_cfg, Split::Train);
        // Learning rates found by convergence probes: the detection trunks
        // collapse (dying ReLUs) above ~0.004 with per-sample momentum SGD.
        // The deep Faster16 analogue converges more slowly and gets extra
        // epochs, mirroring the paper's heavier VGG training schedule.
        let lr = match zoo.task {
            Task::Classification => 0.005,
            Task::Detection => 0.002,
        };
        let epochs = match workload {
            Workload::Faster16 => budget.epochs * 3 / 2,
            _ => budget.epochs,
        };
        let cfg = TrainConfig {
            epochs,
            lr,
            lr_decay: 0.9,
            bbox_weight: 2.0,
            seed: 7,
        };
        match zoo.task {
            Task::Classification => {
                let samples: Vec<ClsSample> = train_clips
                    .iter()
                    .flat_map(|c| c.frames.iter().map(cls_sample))
                    .collect();
                train::train_classifier(&mut zoo.network, &samples, &cfg);
            }
            Task::Detection => {
                let samples: Vec<DetSample> = train_clips
                    .iter()
                    .flat_map(|c| c.frames.iter().map(det_sample))
                    .collect();
                train::train_detector(&mut zoo.network, &samples, &cfg);
            }
        }
        store_cache(&zoo, &cache);
    }
    let eval_cfg = dataset_config(workload, budget.eval_clips, budget.eval_clip_len);
    TrainedWorkload {
        workload,
        zoo,
        validation: dataset::build(&eval_cfg, Split::Validation),
        test: dataset::build(&eval_cfg, Split::Test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_ordered() {
        let f = Budget::full();
        let q = Budget::quick();
        assert!(q.train_clips < f.train_clips);
        assert!(q.eval_clip_len < f.eval_clip_len);
    }

    #[test]
    fn dataset_configs_match_tasks() {
        let a = dataset_config(Workload::AlexNet, 4, 2);
        assert_eq!(a.scene.height, 32);
        let f = dataset_config(Workload::Faster16, 4, 2);
        assert_eq!(f.scene.height, 48);
        // Faster16 and FasterM share scenes but distinct seeds.
        let m = dataset_config(Workload::FasterM, 4, 2);
        assert_ne!(f.seed, m.seed);
    }

    #[test]
    fn sample_conversion() {
        use eva2_video::scene::Scene;
        let frame = Scene::new(SceneConfig::detection(48, 48), 3).render(0);
        let d = det_sample(&frame);
        assert_eq!(d.label, frame.truth.class);
        for v in d.bbox {
            assert!((0.0..=1.0).contains(&v), "bbox coord {v}");
        }
        let c = cls_sample(&frame);
        assert_eq!(c.input.shape().spatial(), (48, 48));
    }

    #[test]
    fn quick_training_produces_evaluable_workload() {
        let budget = Budget {
            train_clips: 8,
            train_clip_len: 2,
            eval_clips: 2,
            eval_clip_len: 4,
            epochs: 1,
        };
        let tw = train_workload(Workload::FasterM, &budget);
        assert_eq!(tw.validation.len(), 2);
        assert_eq!(tw.test.len(), 2);
        // The network runs on the eval frames.
        let out = tw
            .zoo
            .network
            .forward(&tw.test[0].frames[0].image.to_tensor());
        assert_eq!(out.shape().channels, eva2_cnn::zoo::DETECTION_OUTPUTS);
    }
}
