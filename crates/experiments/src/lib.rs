//! Experiment harness regenerating every table and figure of the EVA² paper.
//!
//! Each binary in `src/bin/` reproduces one artifact; this library holds the
//! shared machinery:
//!
//! * [`workloads`] — builds and trains the three scaled-down networks on the
//!   synthetic video datasets (the Caffe-training step of §IV-B).
//! * [`evalproto`] — the paper's evaluation protocols: full-CNN baselines,
//!   the fixed-gap key→predicted protocol of Fig 14 / Table II, and
//!   policy-driven runs over whole clips for Table I / Fig 15.
//! * [`report`] — plain-text tables matching the paper's rows plus JSON
//!   dumps under `results/`.
//!
//! Binaries (see DESIGN.md §5 for the full index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig12_area` | Fig 12 area comparison |
//! | `fig13_energy_latency` | Fig 13 energy & latency bars |
//! | `table1_tradeoff` | Table I accuracy/efficiency trade-off |
//! | `fig14_motion_estimation` | Fig 14 motion-estimator comparison |
//! | `table2_target_layer` | Table II early/late target accuracy |
//! | `table3_retraining` | Table III suffix retraining |
//! | `fig15_keyframe_policy` | Fig 15 adaptive key-frame strategies |
//! | `sec4a_firstorder` | §IV-A first-order op model |
//!
//! Set `EVA2_QUICK=1` to shrink datasets/training for smoke runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod evalproto;
pub mod report;
pub mod workloads;

/// `true` when `EVA2_QUICK=1` (smaller datasets, faster smoke runs).
pub fn quick_mode() -> bool {
    std::env::var("EVA2_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}
